"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "cjpeg" in out and "encryption" in out


def test_simulate_prints_summary(capsys):
    code = main(["simulate", "rawcaudio", "--clusters", "2",
                 "--predictor", "stride", "--steering", "vpb",
                 "--length", "2000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "communications/inst" in out


def test_simulate_with_interconnect_knobs(capsys):
    main(["simulate", "rawcaudio", "--length", "1500",
          "--comm-latency", "4", "--paths", "1"])
    assert "L4" in capsys.readouterr().out


def test_figure_command_with_subset(capsys):
    main(["figure2", "--workloads", "rawcaudio", "--length", "1500"])
    out = capsys.readouterr().out
    assert "Figure 2" in out and "AVERAGE" in out


def test_headline_with_subset(capsys):
    main(["headline", "--workloads", "rawcaudio", "--length", "1500"])
    assert "ipcr4_vpb" in capsys.readouterr().out


def test_unknown_workload_in_subset_rejected():
    with pytest.raises(SystemExit, match="unknown workloads"):
        main(["figure2", "--workloads", "bogus", "--length", "1000"])


def test_bad_simulate_workload_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "bogus"])


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("figure2", "figure3", "figure4a", "figure4b",
                    "figure5", "headline", "ablations", "simulate"):
        assert command in text


class TestCrashTraceFlush:
    """A simulation that dies mid-run must still leave a complete trace
    on disk: the buffered sinks are the flight recorder for exactly
    that crash."""

    def _crashing_simulate(self, events_before_crash=3):
        from repro.errors import SimulationError

        def fake(trace, config, tracer=None, **kwargs):
            for seq in range(events_before_crash):
                tracer.fetch(cycle=seq, seq=seq, pc=seq * 4)
            raise SimulationError("deadlock at cycle 3")

        return fake

    def test_jsonl_sink_flushed_when_simulate_raises(
            self, tmp_path, monkeypatch, capsys):
        import json
        monkeypatch.setattr("repro.cli.simulate",
                            self._crashing_simulate())
        out = tmp_path / "crash.jsonl"
        code = main(["simulate", "rawcaudio", "--length", "500",
                     "--trace-out", str(out)])
        assert code == 1
        assert "simulation error" in capsys.readouterr().err
        lines = out.read_text().splitlines()
        # Schema header plus every event emitted before the crash,
        # despite the JsonlSink's internal buffering.
        header = json.loads(lines[0])
        assert header["schema"] == "repro-trace-v1"
        assert len(lines) == 1 + 3
        assert [json.loads(line)["cycle"] for line in lines[1:]] \
            == [0, 1, 2]

    def test_chrome_sink_flushed_when_simulate_raises(
            self, tmp_path, monkeypatch):
        import json
        monkeypatch.setattr("repro.cli.simulate",
                            self._crashing_simulate())
        out = tmp_path / "crash.json"
        assert main(["simulate", "rawcaudio", "--length", "500",
                     "--trace-out", str(out)]) == 1
        doc = json.loads(out.read_text())
        # The Chrome trace accumulates in memory; without the flush the
        # file would not exist at all after a crash.
        assert doc["traceEvents"]

    def test_healthy_simulate_still_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "ok.jsonl"
        assert main(["simulate", "rawcaudio", "--length", "500",
                     "--trace-out", str(out)]) == 0
        assert "events" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) > 1


class TestCacheCli:
    def test_figure_cold_then_warm_via_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["figure5", "--workloads", "rawcaudio", "--length",
                "1000", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hit(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 miss(es)" in warm and "0 hit(s)" not in warm
        # The figure table itself is identical either way.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("cache:")]
        assert strip(cold) == strip(warm)

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(["figure5", "--workloads", "rawcaudio", "--length", "1000",
              "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        stats = capsys.readouterr().out
        assert str(cache_dir) in stats
        assert main(["cache", "clear", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "0 entr" in capsys.readouterr().out

    def test_empty_cache_dir_is_usage_error(self, capsys):
        assert main(["cache", "stats", "--cache-dir", "   "]) == 2
        assert "error" in capsys.readouterr().err


def test_campaign_accepts_jobs_flag(tmp_path, capsys):
    code = main(["campaign", "--workloads", "rawcaudio", "--length",
                 "1500", "--seeds", "1", "--jobs", "2",
                 "--output", str(tmp_path / "report.txt")])
    assert code == 0
    assert "detection" in capsys.readouterr().out.lower()


class TestReportCli:
    """`repro report`: the perf-regression dashboard command."""

    @staticmethod
    def _bench_file(tmp_path, rates):
        import json
        entries = [{"benchmark": "smoke_guard", "commit": f"c{i:07d}",
                    "timestamp_utc": f"2026-08-0{i + 1}T00:00:00Z",
                    "cpu_count": 2, "cells": 16, "trace_length": 1500,
                    "serial_insts_per_second": rate}
                   for i, rate in enumerate(rates)]
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(entries))
        return path

    def test_report_renders_dashboard(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path, [100_000.0])
        assert main(["report", "--bench", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "# Sweep performance dashboard" in out
        assert "None detected." in out

    def test_report_flags_synthetic_25pct_regression(self, tmp_path,
                                                     capsys):
        bench = self._bench_file(tmp_path, [100_000.0, 75_000.0])
        assert main(["report", "--bench", str(bench)]) == 0
        captured = capsys.readouterr()
        assert "25.0%" in captured.out
        assert "down 25.0%" in captured.err
        # With --fail-on-regression the same drop is a failing exit.
        assert main(["report", "--bench", str(bench),
                     "--fail-on-regression"]) == 1

    def test_report_threshold_is_bounded(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path, [100_000.0])
        assert main(["report", "--bench", str(bench),
                     "--threshold", "1.5"]) == 2
        assert "threshold" in capsys.readouterr().err

    def test_report_writes_markdown_file(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path, [100_000.0])
        out = tmp_path / "dashboard.md"
        assert main(["report", "--bench", str(bench),
                     "--out", str(out)]) == 0
        assert "dashboard" in capsys.readouterr().out
        assert out.read_text().startswith("# Sweep performance dashboard")

    def test_report_includes_receipts(self, tmp_path, capsys):
        from repro.analysis.parallel import SweepCell, run_cells
        bench = self._bench_file(tmp_path, [100_000.0])
        receipt = tmp_path / "run_receipt.json"
        run_cells([SweepCell(key="r", workload="rawcaudio",
                             n_clusters=1, length=300)],
                  jobs=1, label="cli-receipt", receipt_path=receipt)
        assert main(["report", "--bench", str(bench),
                     "--receipt", str(receipt)]) == 0
        out = capsys.readouterr().out
        assert "## Run receipts" in out and "cli-receipt" in out

    def test_report_rejects_bad_receipt(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path, [100_000.0])
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["report", "--bench", str(bench),
                     "--receipt", str(bad)]) == 2
        assert "bad receipt" in capsys.readouterr().err


class TestTelemetryCli:
    """--progress / --telemetry-out / --receipt-out on sweep commands."""

    def test_figure_writes_telemetry_and_receipt(self, tmp_path, capsys):
        from repro.obs.schema import (validate_receipt,
                                      validate_telemetry_jsonl)
        telemetry = tmp_path / "events.jsonl"
        receipt = tmp_path / "receipt.json"
        code = main(["figure2", "--workloads", "rawcaudio", "--length",
                     "300", "--progress", "--telemetry-out",
                     str(telemetry), "--receipt-out", str(receipt)])
        assert code == 0
        captured = capsys.readouterr()
        assert "telemetry:" in captured.out
        assert "receipt:" in captured.out
        assert "[figure2]" in captured.err  # live progress lines
        assert validate_telemetry_jsonl(str(telemetry)) > 0
        assert validate_receipt(str(receipt)) == 6

    def test_campaign_telemetry_out(self, tmp_path, capsys):
        from repro.obs.schema import validate_telemetry_jsonl
        telemetry = tmp_path / "campaign.jsonl"
        code = main(["campaign", "--workloads", "rawcaudio", "--length",
                     "1000", "--seeds", "1",
                     "--telemetry-out", str(telemetry)])
        assert code == 0
        assert validate_telemetry_jsonl(str(telemetry)) > 0
        events = telemetry.read_text()
        assert "fault-campaign" in events


class TestSampledSimulateCli:
    """`simulate --sample-interval` and its validation surface."""

    def test_sampled_simulate_prints_sampled_summary(self, capsys):
        code = main(["simulate", "cjpeg", "--clusters", "2",
                     "--predictor", "stride", "--steering", "vpb",
                     "--length", "40000", "--sample-interval", "500",
                     "--sample-warmup", "100", "--samples", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled run" in out
        assert "4 windows" in out
        assert "95% CI" in out

    def test_checkpoint_dir_is_populated(self, tmp_path, capsys):
        ckpts = tmp_path / "ckpts"
        code = main(["simulate", "cjpeg", "--length", "40000",
                     "--sample-interval", "500", "--sample-warmup",
                     "100", "--samples", "4", "--checkpoint-dir",
                     str(ckpts)])
        assert code == 0
        assert list(ckpts.glob("*.ckpt"))

    @pytest.mark.parametrize("extra", [
        ["--sample-interval", "0"],
        ["--sample-interval", "500", "--sample-warmup", "-1"],
        ["--sample-interval", "100", "--sample-warmup", "100"],
        ["--sample-interval", "500", "--samples", "0"],
        ["--checkpoint-dir", "/tmp/x"],          # without sampling
    ])
    def test_bad_sampling_flags_are_usage_errors(self, extra, capsys):
        code = main(["simulate", "cjpeg", "--length", "40000"] + extra)
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sampling_rejects_trace_out(self, tmp_path, capsys):
        code = main(["simulate", "cjpeg", "--length", "40000",
                     "--sample-interval", "500",
                     "--trace-out", str(tmp_path / "t.jsonl")])
        assert code == 2

    def test_unwritable_checkpoint_dir_is_usage_error(self, capsys):
        code = main(["simulate", "cjpeg", "--length", "40000",
                     "--sample-interval", "500",
                     "--checkpoint-dir", "/proc/nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCheckpointCli:
    """The `repro checkpoint save/info/resume` surface."""

    def _save(self, tmp_path, capsys):
        path = tmp_path / "wl.ckpt"
        code = main(["checkpoint", "save", "cjpeg", "--at", "5000",
                     "--out", str(path)])
        assert code == 0
        capsys.readouterr()
        return path

    def test_save_then_info(self, tmp_path, capsys):
        path = self._save(tmp_path, capsys)
        assert main(["checkpoint", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro-snapshot-v1" in out
        assert "executor" in out
        assert "cjpeg" in out

    def test_save_then_resume(self, tmp_path, capsys):
        path = self._save(tmp_path, capsys)
        code = main(["checkpoint", "resume", str(path), "--run", "2000",
                     "--clusters", "2", "--predictor", "stride",
                     "--steering", "vpb"])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_resume_refuses_machine_snapshot_mismatch(self, tmp_path,
                                                      capsys):
        bogus = tmp_path / "not-a-snapshot"
        bogus.write_text("junk\n")
        code = main(["checkpoint", "info", str(bogus)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_save_beyond_trace_end_is_usage_error(self, tmp_path, capsys):
        code = main(["checkpoint", "save", "cjpeg", "--at", "999999999",
                     "--out", str(tmp_path / "x.ckpt"),
                     "--max-insts", "10000"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

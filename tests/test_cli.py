"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "cjpeg" in out and "encryption" in out


def test_simulate_prints_summary(capsys):
    code = main(["simulate", "rawcaudio", "--clusters", "2",
                 "--predictor", "stride", "--steering", "vpb",
                 "--length", "2000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "communications/inst" in out


def test_simulate_with_interconnect_knobs(capsys):
    main(["simulate", "rawcaudio", "--length", "1500",
          "--comm-latency", "4", "--paths", "1"])
    assert "L4" in capsys.readouterr().out


def test_figure_command_with_subset(capsys):
    main(["figure2", "--workloads", "rawcaudio", "--length", "1500"])
    out = capsys.readouterr().out
    assert "Figure 2" in out and "AVERAGE" in out


def test_headline_with_subset(capsys):
    main(["headline", "--workloads", "rawcaudio", "--length", "1500"])
    assert "ipcr4_vpb" in capsys.readouterr().out


def test_unknown_workload_in_subset_rejected():
    with pytest.raises(SystemExit, match="unknown workloads"):
        main(["figure2", "--workloads", "bogus", "--length", "1000"])


def test_bad_simulate_workload_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "bogus"])


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("figure2", "figure3", "figure4a", "figure4b",
                    "figure5", "headline", "ablations", "simulate"):
        assert command in text

"""Golden-model co-simulation tests: clean runs pass, tampering raises."""

import pytest

from repro.core import make_config, simulate
from repro.errors import DivergenceError
from repro.isa.executor import FunctionalExecutor, recompute_result
from repro.validation import GoldenModel
from repro.workloads import build_workload, workload_trace

from ..conftest import make_dyn


def _consistent_trace():
    """li r1=5; add r2=r1+r1; add r3=r1+r2 — self-consistent."""
    return [
        make_dyn(0, 0x1000, op="li", dest=1, result=5),
        make_dyn(1, 0x1004, op="add", dest=2, srcs=(1, 1),
                 src_values=(5, 5), result=10),
        make_dyn(2, 0x1008, op="add", dest=3, srcs=(1, 2),
                 src_values=(5, 10), result=15),
    ]


class TestCleanRuns:
    def test_workload_run_passes_check(self):
        trace = list(workload_trace("rawcaudio", 2000))
        result = simulate(trace, make_config(4, predictor="stride",
                                             steering="vpb"), check=True)
        assert result.validation["golden_commits"] == len(trace)
        assert result.validation["golden_batches"] >= 1

    def test_small_interval_checks_every_commit(self):
        trace = list(workload_trace("rawcaudio", 500))
        config = make_config(2, predictor="stride", steering="vpb",
                             golden_interval=1)
        result = simulate(trace, config, check=True)
        assert result.validation["golden_batches"] == len(trace)

    def test_final_state_matches_functional_executor(self):
        program = build_workload("rawcaudio")
        executor = FunctionalExecutor(program, 1500)
        trace = list(executor.run())
        golden = GoldenModel(interval=128)
        from repro.core.processor import Processor
        processor = Processor(make_config(4, predictor="stride",
                                          steering="vpb"), iter(trace),
                              golden=golden)
        processor.run()
        assert golden.finish() == len(trace)
        assert golden.int_regs == executor.int_regs
        assert golden.fp_regs == executor.fp_regs


class TestTamperedTraces:
    def test_tampered_result_raises_divergence(self):
        trace = _consistent_trace()
        trace[2] = make_dyn(2, 0x1008, op="add", dest=3, srcs=(1, 2),
                            src_values=(5, 10), result=999)
        with pytest.raises(DivergenceError, match="re-executed result"):
            simulate(trace, make_config(1), check=True)

    def test_tampered_source_raises_divergence_with_diff(self):
        trace = _consistent_trace()
        trace[2] = make_dyn(2, 0x1008, op="add", dest=3, srcs=(2, 2),
                            src_values=(11, 11), result=22)
        with pytest.raises(DivergenceError) as exc_info:
            simulate(trace, make_config(1), check=True)
        error = exc_info.value
        assert error.seq == 2
        assert error.pc == 0x1008
        assert error.register_diff  # names the diverging register
        (diff,) = error.register_diff.values()
        assert diff == {"golden": 10, "trace": 11}

    def test_divergence_error_context_is_machine_readable(self):
        trace = _consistent_trace()
        trace[1] = make_dyn(1, 0x1004, op="add", dest=2, srcs=(1, 1),
                            src_values=(5, 5), result=11)
        with pytest.raises(DivergenceError) as exc_info:
            simulate(trace, make_config(1), check=True)
        context = exc_info.value.context()
        assert context["component"] == "golden-model"
        assert context["seq"] == 1
        assert "cycle" in context


class TestGoldenModelUnit:
    def test_out_of_order_commit_detected(self):
        golden = GoldenModel(interval=1)
        golden.on_commit(make_dyn(0, 0x1000, op="li", dest=1, result=5),
                         cycle=3, cluster=0)
        with pytest.raises(DivergenceError, match="expected seq 1"):
            golden.on_commit(
                make_dyn(2, 0x1008, op="li", dest=2, result=6),
                cycle=4, cluster=1)

    def test_duplicate_commit_detected(self):
        golden = GoldenModel(interval=1)
        dyn = make_dyn(0, 0x1000, op="li", dest=1, result=5)
        golden.on_commit(dyn, cycle=3, cluster=0)
        with pytest.raises(DivergenceError):
            golden.on_commit(dyn, cycle=4, cluster=0)

    def test_batching_defers_detection_to_flush(self):
        golden = GoldenModel(interval=64)
        golden.on_commit(make_dyn(1, 0x1004, op="li", dest=1, result=5),
                         cycle=3, cluster=0)  # wrong seq, buffered
        with pytest.raises(DivergenceError):
            golden.finish()

    def test_matches_executor_diff(self):
        golden = GoldenModel()
        golden.on_commit(make_dyn(0, 0x1000, op="li", dest=1, result=5),
                         cycle=1, cluster=0)
        golden.finish()
        state = golden.register_state()
        assert golden.matches_executor(state)
        state[next(iter(state))] = object()
        assert not golden.matches_executor(state)
        assert golden.diff_against(state)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            GoldenModel(interval=0)


class TestRecomputeResult:
    def test_reexecutes_pure_int_ops(self):
        assert recompute_result("add", (2, 3), None) == (True, 5)

    def test_skips_memory_ops(self):
        known, _ = recompute_result("lw", (0x100,), None)
        assert not known

    def test_skips_immediate_forms_without_imm(self):
        known, _ = recompute_result("addi", (2,), None)
        assert not known

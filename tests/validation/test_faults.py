"""Fault-injection harness tests.

The central property (docs/ROBUSTNESS.md): every injected
predicted-value corruption is caught by the paper's verification
machinery, and the architectural outcome is indistinguishable from a
fault-free run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_config, simulate
from repro.core.processor import Processor
from repro.errors import ConfigError
from repro.isa.executor import FunctionalExecutor
from repro.validation import (FAULT_KINDS, FaultInjector, FaultPlan,
                              GoldenModel)
from repro.workloads import build_workload, workload_trace

TRACE_LEN = 1200


@pytest.fixture(scope="module")
def trace():
    return list(workload_trace("rawcaudio", TRACE_LEN))


def _config(**overrides):
    return make_config(4, predictor="stride", steering="vpb", **overrides)


class TestDetectionProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           rate=st.sampled_from([0.02, 0.1, 0.3]))
    def test_every_injected_corruption_is_detected(self, seed, rate):
        # The golden model co-runs, so this also proves the committed
        # stream stayed architecturally correct despite the faults.
        trace = list(workload_trace("rawcaudio", TRACE_LEN))
        plan = FaultPlan.single("value", rate=rate, seed=seed)
        result = simulate(trace, _config(), check=True, fault_plan=plan)
        report = result.validation["fault_report"]
        assert report.injected_values > 0
        assert report.detected_values == report.injected_values
        assert report.undetected_values == 0
        assert report.detection_rate == 1.0
        assert result.stats.injected_faults == report.total_injected
        assert result.stats.detected_faults == report.detected_values

    def test_final_state_matches_functional_executor(self, trace):
        program = build_workload("rawcaudio")
        executor = FunctionalExecutor(program, TRACE_LEN)
        reference = list(executor.run())
        golden = GoldenModel(interval=128)
        injector = FaultInjector(FaultPlan.single("value", rate=0.1,
                                                  seed=5))
        processor = Processor(_config(), iter(reference), golden=golden,
                              injector=injector)
        processor.run()
        golden.finish()
        assert golden.int_regs == executor.int_regs
        assert golden.fp_regs == executor.fp_regs
        assert injector.report.detection_rate == 1.0

    def test_mixed_fault_kinds_recover(self, trace):
        plan = FaultPlan(seed=9, value_rate=0.05, bus_delay_rate=0.05,
                         bus_drop_rate=0.02, steer_rate=0.02)
        result = simulate(trace, _config(comm_paths_per_cluster=2),
                          check=True, fault_plan=plan)
        report = result.validation["fault_report"]
        assert report.detection_rate == 1.0
        assert result.stats.committed_insts == len(trace)

    def test_faults_are_deterministic_per_seed(self, trace):
        plan = FaultPlan.single("value", rate=0.05, seed=11)
        a = simulate(trace, _config(), fault_plan=plan)
        b = simulate(trace, _config(), fault_plan=plan)
        assert (a.validation["fault_report"].injected
                == b.validation["fault_report"].injected)
        assert a.stats.cycles == b.stats.cycles

    def test_max_faults_caps_injection(self, trace):
        plan = FaultPlan.single("value", rate=0.5, seed=0, max_faults=3)
        result = simulate(trace, _config(), fault_plan=plan)
        report = result.validation["fault_report"]
        assert 0 < report.total_injected <= 3
        assert report.detection_rate == 1.0

    def test_injection_forbidden_with_perfect_predictor(self, trace):
        plan = FaultPlan.single("value", rate=0.1)
        config = make_config(4, predictor="perfect", steering="vpb")
        with pytest.raises(ConfigError, match="perfect"):
            simulate(trace, config, fault_plan=plan)


class TestFaultPlan:
    def test_parse_single_kind_default_rate(self):
        plan = FaultPlan.parse("value")
        assert plan.value_rate == pytest.approx(0.02)
        assert plan.kinds() == ["value"]

    def test_parse_multi_kind_with_seed(self):
        plan = FaultPlan.parse("value:0.05,steer:0.01@seed=7")
        assert plan.seed == 7
        assert plan.value_rate == pytest.approx(0.05)
        assert plan.steer_rate == pytest.approx(0.01)
        assert plan.active

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultPlan.parse("cosmic-ray:0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("value:lots")
        with pytest.raises(ConfigError):
            FaultPlan.parse("value:1.5")

    def test_single_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            FaultPlan.single("gamma")

    def test_describe_round_trips_the_knobs(self):
        plan = FaultPlan.single("bus-drop", rate=0.25, seed=3)
        assert plan.describe() == "bus-drop:0.25@seed=3"

    def test_all_kinds_enumerated(self):
        assert set(FaultPlan(value_rate=1, bus_delay_rate=1,
                             bus_drop_rate=1, steer_rate=1).kinds()) \
            == set(FAULT_KINDS)


class TestInjectorUnit:
    def test_corruption_always_differs_from_actual(self):
        injector = FaultInjector(FaultPlan.single("value", rate=1.0))
        for actual in (0, 1, -5, 1 << 40):
            corrupted = injector.corrupt_prediction(0x1000, 0, actual)
            assert corrupted is not None and corrupted != actual

    def test_injection_counted_at_use_not_at_corruption(self):
        injector = FaultInjector(FaultPlan.single("value", rate=1.0))
        assert injector.corrupt_prediction(0x1000, 0, 42) is not None
        assert injector.report.injected_values == 0  # not used yet
        injector.note_value_injected(0x1000, 0)
        assert injector.report.injected_values == 1

    def test_steering_flip_lands_on_another_cluster(self):
        injector = FaultInjector(FaultPlan.single("steer", rate=1.0))
        for _ in range(32):
            assert injector.flip_steering(2, 4, 0x1000) != 2

    def test_steering_never_flips_single_cluster(self):
        injector = FaultInjector(FaultPlan.single("steer", rate=1.0))
        assert injector.flip_steering(0, 1, 0x1000) == 0

    def test_bus_delay_bounded_by_plan(self):
        plan = FaultPlan.single("bus-delay", rate=1.0, max_delay=3)
        injector = FaultInjector(plan)
        for cycle in range(32):
            assert 1 <= injector.bus_extra_delay(cycle) <= 3

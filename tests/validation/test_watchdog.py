"""Watchdog tests: an engineered deadlock must diagnose, not hang."""

import signal
import time
from contextlib import contextmanager

import pytest

from repro.cluster.register_file import NEVER
from repro.core import make_config
from repro.core.processor import Processor
from repro.errors import DeadlockError, SimulationError
from repro.validation import PipelineSnapshot, PipelineWatchdog

from ..conftest import make_dyn


@contextmanager
def fail_after(seconds: int):
    """SIGALRM guard: abort the test instead of hanging the suite.

    pytest-timeout is not available in this environment, so the guard
    is hand-rolled; it only needs to catch the regression where the
    watchdog stops firing and ``run()`` spins forever.
    """
    def _handler(signum, frame):
        raise AssertionError(
            f"test exceeded {seconds}s — the watchdog failed to fire")

    previous = signal.signal(signal.SIGALRM, _handler)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _wedged_processor(deadlock_cycles: int = 64,
                      tracer=None) -> Processor:
    """A processor whose writebacks never become visible.

    Every ``set_ready`` call after construction is redirected to the
    ``NEVER`` sentinel, so the first instruction's result never wakes
    its dependents: a genuine lost-wakeup deadlock, not a cycle cap.
    """
    trace = [make_dyn(0, 0x1000, op="li", dest=1, result=7)]
    trace += [make_dyn(i, 0x1000 + 4 * i, op="add", dest=2 + (i % 4),
                       srcs=(1, 1), src_values=(7, 7), result=14)
              for i in range(1, 9)]
    processor = Processor(make_config(1, deadlock_cycles=deadlock_cycles),
                          iter(trace), tracer=tracer)
    regfile = processor.clusters[0].regfile

    # RegisterFile uses __slots__, so the method cannot be shadowed on
    # the instance; swapping __class__ to a wedged subclass (same
    # layout, empty __slots__) confines the sabotage to this regfile.
    class _WedgedRegisterFile(type(regfile)):
        __slots__ = ()

        def set_ready(self, preg, cycle):
            super().set_ready(preg, NEVER)

    regfile.__class__ = _WedgedRegisterFile
    return processor


class TestEngineeredDeadlock:
    def test_raises_deadlock_error_quickly(self):
        processor = _wedged_processor()
        start = time.monotonic()
        with fail_after(10):
            with pytest.raises(DeadlockError):
                processor.run()
        assert time.monotonic() - start < 2.0

    def test_error_carries_structured_snapshot(self):
        processor = _wedged_processor()
        with fail_after(10):
            with pytest.raises(DeadlockError) as exc_info:
                processor.run()
        error = exc_info.value
        snapshot = error.snapshot
        assert isinstance(snapshot, PipelineSnapshot)
        assert snapshot.rob_occupancy > 0
        assert snapshot.rob_head is not None
        assert snapshot.cycle - snapshot.last_commit_cycle > snapshot.budget
        assert [c.cluster_id for c in snapshot.clusters] == [0]
        assert snapshot.clusters[0].iq_int_capacity > 0
        # The snapshot is embedded in the message and in context().
        assert "pipeline snapshot" in str(error)
        assert error.context()["component"] == "watchdog"
        assert error.cycle == snapshot.cycle

    def test_deadlock_error_is_a_simulation_error(self):
        processor = _wedged_processor()
        with fail_after(10):
            with pytest.raises(SimulationError):
                processor.run()


class TestPostMortemFlightRecorder:
    """docs/ROBUSTNESS.md: with a tracer installed, the deadlock
    snapshot carries the trailing event window and per-cluster
    dispatch/issue totals at the moment of the hang."""

    def _deadlock_snapshot(self, tracer=None):
        processor = _wedged_processor(tracer=tracer)
        with fail_after(10):
            with pytest.raises(DeadlockError) as exc_info:
                processor.run()
        return exc_info.value.snapshot

    def test_snapshot_carries_trailing_events(self):
        from repro.obs import EventTracer, RingBufferSink
        snapshot = self._deadlock_snapshot(
            tracer=EventTracer(RingBufferSink()))
        assert snapshot.recent_events
        assert all("cycle" in event and "event" in event
                   for event in snapshot.recent_events)
        # The wedge dispatches everything but only the independent
        # first instruction ever retires: the window must show the
        # dispatches and no commit after that lone retirement.
        names = [event["event"] for event in snapshot.recent_events]
        assert "dispatch" in names
        assert names.count("commit") <= 1

    def test_snapshot_carries_per_cluster_occupancy(self):
        snapshot = self._deadlock_snapshot()
        assert snapshot.dispatched_per_cluster == [9]
        assert len(snapshot.issued_per_cluster) == 1

    def test_untraced_snapshot_has_empty_window(self):
        snapshot = self._deadlock_snapshot()
        assert snapshot.recent_events == []

    def test_render_includes_the_event_window(self):
        from repro.obs import EventTracer, RingBufferSink
        snapshot = self._deadlock_snapshot(
            tracer=EventTracer(RingBufferSink()))
        text = snapshot.render()
        assert "last" in text and "events" in text
        assert "dispatched/cluster" in text


class TestWatchdogUnit:
    def _snapshot_fn(self, cycle, last_commit, budget):
        return PipelineSnapshot(
            cycle=cycle, last_commit_cycle=last_commit, budget=budget,
            rob_occupancy=1, rob_size=64, rob_head="<uop>",
            rob_head_unverified=0, rob_head_min_issue=0, fetch_done=False)

    def test_quiet_within_budget(self):
        watchdog = PipelineWatchdog(10, self._snapshot_fn)
        watchdog.note_commit(5)
        for cycle in range(6, 16):
            watchdog.check(cycle)  # gap <= budget: no raise

    def test_fires_one_cycle_past_budget(self):
        watchdog = PipelineWatchdog(10, self._snapshot_fn)
        watchdog.note_commit(5)
        with pytest.raises(DeadlockError) as exc_info:
            watchdog.check(16)
        assert exc_info.value.snapshot.last_commit_cycle == 5

    def test_commit_resets_the_budget(self):
        watchdog = PipelineWatchdog(10, self._snapshot_fn)
        watchdog.note_commit(5)
        watchdog.note_commit(14)
        watchdog.check(24)  # would have fired without the second commit

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            PipelineWatchdog(0, self._snapshot_fn)

    def test_snapshot_render_mentions_key_structures(self):
        snapshot = self._snapshot_fn(100, 80, 15)
        text = snapshot.render()
        assert "cycle 100" in text
        assert "ROB 1/64" in text
        assert "bus" in text

"""Sink and schema tests: every on-disk format validates and round-trips."""

import json

import pytest

from repro.core import make_config, simulate
from repro.obs import (ChromeTraceSink, EventTracer, JsonlSink, ListSink,
                       RingBufferSink, TeeSink)
from repro.obs.events import (EV_COMMIT, EVENT_FIELDS, EVENT_NAMES,
                              event_to_dict)
from repro.obs.schema import (TraceSchemaError, validate_chrome_trace,
                              validate_jsonl_trace)
from repro.workloads import workload_trace


def _traced_run(sink, workload="cjpeg", length=1_200):
    trace = list(workload_trace(workload, length))
    config = make_config(4, predictor="stride", steering="vpb")
    tracer = EventTracer(sink)
    result = simulate(trace, config, tracer=tracer)
    sink.close()
    return result, tracer


class TestEventModel:
    def test_names_and_fields_align(self):
        assert len(EVENT_NAMES) == len(EVENT_FIELDS) == 10

    def test_event_to_dict_names_fields(self):
        record = event_to_dict((7, EV_COMMIT, 3, 0, 12, 1))
        assert record == {"cycle": 7, "event": "commit", "order": 3,
                          "kind": "inst", "seq": 12, "cluster": 1}


class TestRingBuffer:
    def test_bounded_capacity(self):
        sink = RingBufferSink(capacity=64)
        _traced_run(sink)
        assert len(sink) == 64

    def test_counts_survive_overwrites(self):
        sink = RingBufferSink(capacity=16)
        result, tracer = _traced_run(sink)
        stats = result.stats
        assert tracer.counts[EV_COMMIT] == (
            stats.committed_insts + stats.committed_copies
            + stats.committed_vcopies)
        assert tracer.total_events > 16

    def test_tail_returns_most_recent(self):
        sink = RingBufferSink(capacity=8)
        for cycle in range(20):
            sink.append((cycle, EV_COMMIT, cycle, 0, cycle, 0))
        tail = sink.tail(3)
        assert [event[0] for event in tail] == [17, 18, 19]
        assert sink.tail(0) == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonl:
    def test_written_file_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path), "test-config")
        _, tracer = _traced_run(sink)
        count = validate_jsonl_trace(str(path))
        assert count == tracer.total_events
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == "repro-trace-v1"
        assert header["config"] == "test-config"

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "wrong"}\n')
        with pytest.raises(TraceSchemaError):
            validate_jsonl_trace(str(path))

    def test_rejects_unknown_event(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro-trace-v1"}\n'
                        '{"cycle": 1, "event": "teleport"}\n')
        with pytest.raises(TraceSchemaError, match="unknown event"):
            validate_jsonl_trace(str(path))

    def test_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro-trace-v1"}\n'
                        '{"cycle": 1, "event": "commit"}\n')
        with pytest.raises(TraceSchemaError, match="missing fields"):
            validate_jsonl_trace(str(path))


class TestChromeTrace:
    def test_written_file_validates(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path), "test-config")
        _traced_run(sink)
        assert validate_chrome_trace(str(path)) > 0

    def test_commit_instants_equal_committed_uops(self, tmp_path):
        """The acceptance invariant: counting commit instants in the
        Perfetto file recovers the exact retirement count."""
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path), "")
        result, _ = _traced_run(sink)
        obj = json.loads(path.read_text())
        commits = sum(1 for event in obj["traceEvents"]
                      if event.get("name") == "commit"
                      and event.get("ph") == "i")
        stats = result.stats
        assert commits == (stats.committed_insts + stats.committed_copies
                           + stats.committed_vcopies)

    def test_slices_cover_committed_lifecycles(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path), "")
        result, _ = _traced_run(sink)
        obj = json.loads(path.read_text())
        slices = [e for e in obj["traceEvents"] if e.get("ph") == "X"]
        stats = result.stats
        assert len(slices) == (stats.committed_insts
                               + stats.committed_copies
                               + stats.committed_vcopies)
        assert all(event["dur"] >= 1 for event in slices)

    def test_cluster_tracks_are_named(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path), "")
        _traced_run(sink)
        obj = json.loads(path.read_text())
        names = {event["args"]["name"]
                 for event in obj["traceEvents"]
                 if event.get("ph") == "M"
                 and event.get("name") == "thread_name"}
        assert {"cluster 0", "cluster 3", "frontend"} <= names

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace(str(path))
        path.write_text("[]")
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_chrome_trace(str(path))


class TestTee:
    def test_tee_replicates_into_all_sinks(self):
        list_sink = ListSink()
        ring = RingBufferSink(capacity=32)
        _, tracer = _traced_run(TeeSink(list_sink, ring))
        assert len(list_sink) == tracer.total_events
        assert list(ring.events) == list_sink.events[-32:]


class TestPostmortemWindow:
    def test_streaming_sink_still_serves_recent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"), "")
        _, tracer = _traced_run(sink)
        recent = tracer.recent(10)
        assert len(recent) == 10
        assert all("event" in record for record in recent)

    def test_in_memory_sink_serves_recent_directly(self):
        sink = ListSink()
        _, tracer = _traced_run(sink)
        assert tracer.recent(5) == [event_to_dict(event)
                                    for event in sink.events[-5:]]

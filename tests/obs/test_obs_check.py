"""Run the ``make obs-check`` gate from the tier-1 suite.

A regression in non-invasiveness, event completeness, trace schemas,
tracing overhead, or the disabled-hooks zero-allocation audit fails
this test as well as the standalone target.
"""

import pathlib
import sys

BENCH = pathlib.Path(__file__).resolve().parent.parent.parent \
    / "benchmarks"
sys.path.insert(0, str(BENCH))

from obs_check import run_checks  # noqa: E402


def test_observability_gate_passes():
    # The functional checks run at full strength; the wall-clock
    # overhead budget is relaxed here because the suite shares the host
    # with other tests — `make obs-check` enforces the strict 10%.
    checks = run_checks(length=2_000, repeats=3, overhead_budget=0.5)
    failures = [(name, detail) for name, ok, detail in checks if not ok]
    assert not failures, failures
    assert len(checks) == 6

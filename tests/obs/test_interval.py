"""Interval metrics: deltas must sum back to the final cumulatives."""

import pytest

from repro.analysis import interval_rows, to_csv
from repro.core import make_config, simulate
from repro.obs.interval import Histogram, IntervalMetrics
from repro.workloads import workload_trace


def _metered(workload="cjpeg", length=2_000, clusters=4, interval=200,
             **kwargs):
    trace = list(workload_trace(workload, length))
    config = make_config(clusters, predictor="stride", steering="vpb",
                         **kwargs)
    return simulate(trace, config, metrics_interval=interval)


class TestSampling:
    def test_counter_deltas_sum_to_final_values(self):
        result = _metered()
        totals = result.metrics.totals()
        stats = result.stats
        assert totals["committed_insts"] == stats.committed_insts
        assert totals["committed_copies"] == stats.committed_copies
        assert totals["committed_vcopies"] == stats.committed_vcopies
        assert totals["communications"] == stats.communications
        assert totals["issued_uops"] == stats.issued_uops
        assert totals["dispatched_insts"] == stats.dispatched_insts
        assert totals["invalidations"] == stats.invalidations
        assert totals["mismatch_forwards"] == stats.mismatch_forwards

    def test_intervals_tile_the_run_without_gaps(self):
        result = _metered(interval=300)
        samples = result.metrics.samples
        assert samples[0]["cycle_start"] == 0
        for previous, current in zip(samples, samples[1:]):
            assert current["cycle_start"] == previous["cycle_end"]
        # The final (possibly partial) sample reaches the last cycle.
        assert samples[-1]["cycle_end"] == result.stats.cycles

    def test_weighted_interval_ipc_recovers_global_ipc(self):
        result = _metered(interval=250)
        samples = result.metrics.samples
        insts = sum(row["ipc"] * row["cycles"] for row in samples)
        assert insts == pytest.approx(result.stats.committed_insts)

    def test_per_cluster_gauges_have_cluster_arity(self):
        result = _metered(clusters=4)
        for row in result.metrics.samples:
            assert len(row["iq_depth"]) == 4

    def test_histograms_count_every_sample(self):
        metrics = _metered().metrics
        n = len(metrics.samples)
        assert metrics.histograms["rob_occupancy"].total == n
        assert metrics.histograms["iq_depth_total"].total == n


class TestRegistry:
    def test_custom_counter_and_gauge(self):
        metrics = IntervalMetrics(100, 2)
        metrics.add_counter("cycles_total", lambda p: p.stats.cycles)
        metrics.add_gauge("rob_free", lambda p: 64 - len(p.rob))
        assert "cycles_total" in metrics.counter_names

    def test_registration_refused_mid_run(self):
        result = _metered()
        with pytest.raises(ValueError):
            result.metrics.add_counter("late", lambda p: 0)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            IntervalMetrics(0)

    def test_config_rejects_bad_interval(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            make_config(2, metrics_interval=0).validate()


class TestExport:
    def test_rows_flatten_list_gauges(self):
        result = _metered(clusters=4)
        rows = interval_rows(result.metrics)
        assert rows
        first = rows[0]
        assert "iq_depth_c0" in first and "iq_depth_c3" in first
        assert "iq_depth" not in first
        assert not any(isinstance(v, list) for v in first.values())

    def test_rows_export_to_csv(self, tmp_path):
        result = _metered()
        path = tmp_path / "metrics.csv"
        to_csv(interval_rows(result.metrics), str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(result.metrics.samples) + 1
        assert "committed_insts" in lines[0]

    def test_summary_is_one_line_per_sample(self):
        metrics = _metered().metrics
        assert len(metrics.summary().splitlines()) == \
            len(metrics.samples) + 1


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram((2, 4))
        for value in (0, 2, 3, 4, 5, 100):
            hist.add(value)
        assert hist.counts == [2, 2, 2]
        assert hist.total == 6
        buckets = hist.to_dict()["buckets"]
        assert buckets == {"<=2": 2, "<=4": 2, ">4": 2}

    def test_edges_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram((4, 2))
        with pytest.raises(ValueError):
            Histogram(())

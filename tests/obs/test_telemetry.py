"""Sweep telemetry: monitor events, progress, JSONL crash-flush, and
the never-divide-by-zero throughput/ETA helpers (property-tested).
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.schema import TraceSchemaError, validate_telemetry_jsonl
from repro.obs.telemetry import (TELEMETRY_EVENTS, TELEMETRY_SCHEMA,
                                 SweepMonitor, active_monitor, eta_seconds,
                                 normalize_events, throughput, use_monitor)

CELLS = [{"key": "a", "workload": "rawcaudio", "n_clusters": 2,
          "predictor": "stride", "steering": "vpb", "length": 500},
         {"key": "b", "workload": "gsmdec", "n_clusters": 4,
          "predictor": "none", "steering": "baseline", "length": 500}]

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
nonneg_int = st.integers(min_value=0, max_value=10**9)


class TestRateHelpers:
    @settings(max_examples=200)
    @given(done=finite, elapsed=finite)
    def test_throughput_never_raises_or_divides_by_zero(self, done,
                                                        elapsed):
        rate = throughput(done, elapsed)
        if rate is not None:
            assert rate > 0.0
            assert rate == done / elapsed

    @settings(max_examples=200)
    @given(done=finite, total=finite, elapsed=finite)
    def test_eta_never_raises_or_divides_by_zero(self, done, total,
                                                 elapsed):
        eta = eta_seconds(done, total, elapsed)
        if eta is not None:
            assert eta >= 0.0

    @settings(max_examples=100)
    @given(done=nonneg_int, total=nonneg_int)
    def test_eta_zero_elapsed_is_safe(self, done, total):
        # The first progress render fires before any clock tick.
        eta = eta_seconds(done, total, 0.0)
        assert eta is None or eta == 0.0

    def test_degenerate_inputs_yield_none(self):
        assert throughput(0, 10.0) is None
        assert throughput(5, 0.0) is None
        assert throughput(5, -1.0) is None
        assert eta_seconds(0, 10, 5.0) is None

    def test_finished_sweep_eta_is_zero(self):
        assert eta_seconds(10, 10, 3.0) == 0.0
        assert eta_seconds(11, 10, 3.0) == 0.0

    def test_live_values(self):
        assert throughput(6, 3.0) == 2.0
        assert eta_seconds(6, 12, 3.0) == 3.0


class TestSweepMonitor:
    def test_event_stream_shape(self):
        monitor = SweepMonitor()
        monitor.sweep_start("unit", CELLS, jobs=1, chunksize=1)
        monitor.cell_start(0)
        monitor.cell_done(0, seconds=0.5, ok=True)
        monitor.cell_start(1)
        monitor.cell_retry(1, attempt=1, error="DeadlockError")
        monitor.cell_done(1, seconds=0.7, ok=False)
        record = monitor.sweep_done()
        names = [event["event"] for event in monitor.events]
        assert names == ["sweep_start", "cell_start", "cell_done",
                         "cell_start", "cell_retry", "cell_done",
                         "sweep_done"]
        # Envelope: strictly increasing seq, numeric t, declared fields.
        seqs = [event["seq"] for event in monitor.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for event in monitor.events:
            missing = set(TELEMETRY_EVENTS[event["event"]]) - set(event)
            assert not missing, (event["event"], missing)
        assert record.completed == 1
        assert record.failed == 1
        assert record.cells[1].retries == 1

    def test_stored_cell_emits_cache_store_once(self):
        monitor = SweepMonitor()
        monitor.sweep_start("unit", CELLS)
        monitor.cell_done(0, ok=True, stored=True)
        monitor.cell_done(0, ok=True, stored=True)  # idempotent
        stores = [event for event in monitor.events
                  if event["event"] == "cache_store"]
        assert len(stores) == 1
        assert monitor.sweep.stored == 1

    def test_sweep_done_is_idempotent(self):
        monitor = SweepMonitor()
        monitor.sweep_start("unit", CELLS)
        first = monitor.sweep_done()
        assert monitor.sweep_done() is first
        assert sum(1 for event in monitor.events
                   if event["event"] == "sweep_done") == 1

    def test_cached_and_simulated_counters(self):
        monitor = SweepMonitor()
        monitor.sweep_start("unit", CELLS)
        monitor.cell_done(0, ok=True, cached=True)
        monitor.cell_done(1, ok=True)
        record = monitor.sweep_done()
        assert record.cached == 1
        assert record.simulated == 1
        assert record.done == 2

    def test_progress_lines_on_plain_stream(self):
        stream = io.StringIO()
        monitor = SweepMonitor(progress=True, stream=stream)
        monitor.sweep_start("unit", CELLS)
        monitor.cell_done(0, ok=True)
        monitor.sweep_done()
        out = stream.getvalue()
        assert "[unit]" in out
        assert "1/2 cells" in out
        assert "done: 2 cells" in out

    def test_dead_progress_stream_disables_progress(self):
        stream = io.StringIO()
        stream.close()
        monitor = SweepMonitor(progress=True, stream=stream)
        monitor.sweep_start("unit", CELLS)  # must not raise
        assert monitor.progress is False

    def test_ambient_wiring_nests_and_restores(self):
        assert active_monitor() is None
        outer, inner = SweepMonitor(), SweepMonitor()
        with use_monitor(outer):
            assert active_monitor() is outer
            with use_monitor(inner):
                assert active_monitor() is inner
            with use_monitor(None):  # explicit silence
                assert active_monitor() is None
            assert active_monitor() is outer
        assert active_monitor() is None


class TestNormalization:
    def _events(self, shuffled=False):
        events = [
            {"event": "sweep_start", "seq": 1, "t": 0.0, "label": "s",
             "cells": 2, "jobs": 1, "chunksize": 1},
            {"event": "cell_done", "seq": 2, "t": 0.5, "label": "s",
             "key": "a", "ok": True, "cached": False, "seconds": 0.5},
            {"event": "worker_up", "seq": 3, "t": 0.6, "jobs": 2},
            {"event": "cell_done", "seq": 4, "t": 0.9, "label": "s",
             "key": "b", "ok": True, "cached": False, "seconds": 0.4},
            {"event": "sweep_done", "seq": 5, "t": 1.0, "label": "s",
             "completed": 2, "failed": 0, "cached": 0, "seconds": 1.0},
        ]
        if shuffled:
            events = [events[3], events[0], events[4], events[1]]
            events.append({"event": "worker_down", "seq": 9, "t": 2.0})
            # Different wall-clock/topology, same sweep outcome.
            events = [dict(event, t=event["t"] + 7.0, jobs=4,
                           seq=event["seq"] + 10) for event in events]
        return events

    def test_order_and_volatile_fields_normalize_away(self):
        assert (normalize_events(self._events())
                == normalize_events(self._events(shuffled=True)))

    def test_transport_events_dropped(self):
        names = {event["event"]
                 for event in normalize_events(self._events())}
        assert "worker_up" not in names and "worker_down" not in names
        assert "sweep_done" in names


class TestJsonlCrashFlush:
    def test_events_on_disk_without_close(self, tmp_path):
        # The crash contract: every emitted event is flushed, so a
        # monitor that never gets a clean close still leaves a valid
        # (partial) log behind.
        path = tmp_path / "telemetry.jsonl"
        monitor = SweepMonitor(jsonl_path=str(path))
        monitor.sweep_start("crash", CELLS)
        monitor.cell_start(0)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"schema": TELEMETRY_SCHEMA}
        assert len(lines) == 3  # header + sweep_start + cell_start
        assert validate_telemetry_jsonl(str(path)) == 2

    def test_interrupted_sweep_still_flushes_terminal_event(self,
                                                            tmp_path):
        path = tmp_path / "telemetry.jsonl"
        monitor = SweepMonitor(jsonl_path=str(path))
        with pytest.raises(KeyboardInterrupt):
            try:
                monitor.sweep_start("interrupted", CELLS)
                monitor.cell_start(0)
                raise KeyboardInterrupt
            finally:
                # The runner's finally block does exactly this.
                monitor.sweep_done()
                monitor.close()
        events = [json.loads(line)
                  for line in path.read_text().splitlines()[1:]]
        assert events[-1]["event"] == "sweep_done"
        assert validate_telemetry_jsonl(str(path)) == 3

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with SweepMonitor(jsonl_path=str(path)) as monitor:
            monitor.sweep_start("unit", CELLS)
            monitor.sweep_done()
            monitor.close()
        monitor.close()
        assert validate_telemetry_jsonl(str(path)) == 2

    def test_validator_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": TELEMETRY_SCHEMA}) + "\n"
                        + json.dumps({"event": "not-an-event", "seq": 1,
                                      "t": 0.0}) + "\n")
        with pytest.raises(TraceSchemaError, match="unknown telemetry"):
            validate_telemetry_jsonl(str(path))

    def test_validator_rejects_nonmonotonic_seq(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        event = {"event": "worker_down", "seq": 1, "t": 0.0}
        path.write_text(json.dumps({"schema": TELEMETRY_SCHEMA}) + "\n"
                        + json.dumps(event) + "\n"
                        + json.dumps(event) + "\n")
        with pytest.raises(TraceSchemaError, match="strictly"):
            validate_telemetry_jsonl(str(path))

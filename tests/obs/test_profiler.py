"""Phase profiler: attributed time must account for the wall clock."""

import time

import pytest

from repro.core import make_config, simulate
from repro.obs.profiler import PHASES, PhaseProfiler
from repro.workloads import workload_trace


def _profiled_run(length=2_000):
    trace = list(workload_trace("cjpeg", length))
    config = make_config(4, predictor="stride", steering="vpb")
    start = time.perf_counter()
    result = simulate(trace, config, profile=True)
    wall = time.perf_counter() - start
    return result, wall


class TestAttribution:
    def test_phase_totals_approximate_wall_time(self):
        result, wall = _profiled_run()
        profile = result.profile
        attributed = profile.attributed_seconds
        # Attributed time can only miss the loop condition and the
        # bracket reads themselves: it must lie within the loop total,
        # and the loop total within the whole simulate() call.
        assert 0 < attributed <= profile.total_seconds <= wall
        # ...and the unattributed slice is a small fraction, not a
        # mis-bracketed stage (generous bound for noisy CI hosts).
        assert attributed >= 0.5 * profile.total_seconds

    def test_every_phase_is_populated(self):
        result, _ = _profiled_run()
        seconds = result.profile.seconds
        assert set(seconds) == set(PHASES)
        # Every pipeline stage runs every cycle; all must accrue time.
        for phase in ("events", "commit", "issue", "decode", "fetch"):
            assert seconds[phase] > 0, phase

    def test_cycle_count_matches_simulated_cycles(self):
        result, _ = _profiled_run()
        assert result.profile.cycles == result.stats.cycles

    def test_shares_sum_to_one(self):
        result, _ = _profiled_run()
        shares = result.profile.to_dict()["shares"]
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)


class TestReporting:
    def test_to_dict_shape(self):
        result, _ = _profiled_run(length=500)
        profile = result.profile.to_dict()
        assert set(profile) == {"phases", "shares", "attributed_seconds",
                                "total_seconds", "cycles",
                                "cycles_per_second"}
        assert profile["cycles_per_second"] > 0

    def test_report_lists_every_phase(self):
        result, _ = _profiled_run(length=500)
        text = result.profile.report()
        for phase in PHASES:
            assert phase in text
        assert "total" in text

    def test_empty_profiler_reports_zero(self):
        profile = PhaseProfiler()
        assert profile.attributed_seconds == 0.0
        assert profile.to_dict()["cycles_per_second"] == 0.0
        assert "total" in profile.report()

"""The observability contract: observers never change the simulation.

Every tracer/metrics/profiler combination must leave the committed
instruction stream and every ``SimStats`` field bit-identical to an
unobserved run.  The configs below span clusters x predictor x
steering (>= 8 cells) and include golden co-simulation (``check=True``)
so the committed stream itself — not just its length — is verified.
"""

import dataclasses

import pytest

from repro.core import make_config, simulate
from repro.obs import EventTracer, ListSink, RingBufferSink
from repro.obs.events import EV_COMMIT
from repro.workloads import workload_trace

CONFIGS = [
    ("rawcaudio", 1, "none", "baseline"),
    ("rawcaudio", 2, "stride", "baseline"),
    ("cjpeg", 2, "context", "modified"),
    ("cjpeg", 4, "stride", "vpb"),
    ("gsmdec", 4, "hybrid", "vpb"),
    ("gsmdec", 1, "stride", "round-robin"),
    ("epicdec", 4, "none", "balance-only"),
    ("epicdec", 2, "hybrid", "dependence-only"),
    ("mpeg2enc", 4, "context", "modified"),
]

LENGTH = 1_500


def _stats_dict(result):
    return dataclasses.asdict(result.stats)


def _run(workload, clusters, predictor, steering, **kwargs):
    trace = list(workload_trace(workload, LENGTH))
    config = make_config(clusters, predictor=predictor, steering=steering)
    return simulate(trace, config, **kwargs)


@pytest.mark.parametrize("workload,clusters,predictor,steering", CONFIGS)
def test_traced_run_is_bit_identical(workload, clusters, predictor,
                                     steering):
    base = _run(workload, clusters, predictor, steering)
    sink = ListSink()
    traced = _run(workload, clusters, predictor, steering,
                  tracer=EventTracer(sink))
    assert _stats_dict(base) == _stats_dict(traced)
    assert base.to_dict() == traced.to_dict()
    assert len(sink.events) > 0


@pytest.mark.parametrize("workload,clusters,predictor,steering", CONFIGS)
def test_traced_run_passes_golden_cosim(workload, clusters, predictor,
                                        steering):
    """check=True verifies the committed stream instruction by
    instruction, so a tracer-induced stream change cannot hide."""
    base = _run(workload, clusters, predictor, steering, check=True)
    traced = _run(workload, clusters, predictor, steering, check=True,
                  tracer=EventTracer(RingBufferSink()))
    assert traced.validation["golden_commits"] == \
        base.validation["golden_commits"]
    assert _stats_dict(base) == _stats_dict(traced)


def test_commit_events_enumerate_the_committed_stream():
    """The traced commit events ARE the committed stream: one event per
    retired uop, program instructions in sequence order."""
    sink = ListSink()
    tracer = EventTracer(sink)
    result = _run("cjpeg", 4, "stride", "vpb", tracer=tracer)
    stats = result.stats
    commits = [e for e in sink.events if e[1] == EV_COMMIT]
    assert len(commits) == (stats.committed_insts + stats.committed_copies
                            + stats.committed_vcopies)
    assert tracer.counts[EV_COMMIT] == len(commits)
    # Program instructions retire in program order: their seq fields
    # are exactly 0..N-1.
    inst_seqs = [e[4] for e in commits if e[3] == 0]
    assert inst_seqs == list(range(stats.committed_insts))


def test_metrics_and_profiler_are_noninvasive():
    base = _run("gsmdec", 4, "stride", "vpb")
    metered = _run("gsmdec", 4, "stride", "vpb", metrics_interval=250)
    profiled = _run("gsmdec", 4, "stride", "vpb", profile=True)
    everything = _run("gsmdec", 4, "stride", "vpb",
                      tracer=EventTracer(ListSink()),
                      metrics_interval=250, profile=True)
    for observed in (metered, profiled, everything):
        assert _stats_dict(base) == _stats_dict(observed)
    assert base.metrics is None and base.profile is None
    assert metered.metrics is not None
    assert profiled.profile is not None


def test_observers_excluded_from_exported_dict():
    """to_dict() must not change shape because a run was observed."""
    base = _run("rawcaudio", 2, "stride", "baseline")
    observed = _run("rawcaudio", 2, "stride", "baseline",
                    tracer=EventTracer(ListSink()), metrics_interval=100,
                    profile=True)
    assert base.to_dict() == observed.to_dict()

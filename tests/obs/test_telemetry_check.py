"""Run the ``make telemetry-check`` gate from the tier-1 suite.

A regression in monitor overhead, monitored-run bit-identity, the
telemetry JSONL / receipt schemas, or the receipts' cache accounting
fails this test as well as the standalone target.
"""

import pathlib
import sys

BENCH = pathlib.Path(__file__).resolve().parent.parent.parent \
    / "benchmarks"
sys.path.insert(0, str(BENCH))

from telemetry_check import run_checks  # noqa: E402


def test_telemetry_gate_passes():
    # The functional checks run at full strength on a shorter sweep;
    # the wall-clock overhead budget is relaxed here because the suite
    # shares the host with other tests — `make telemetry-check`
    # enforces the strict 2%.
    checks = run_checks(length=300, repeats=2, overhead_budget=0.5)
    failures = [(name, detail) for name, ok, detail in checks if not ok]
    assert not failures, failures
    assert len(checks) == 7

"""Unit coverage for the wall-clock benchmark's reporting helpers.

The full benchmark is exercised by ``make bench-smoke`` /
``make bench-wallclock``; here we only pin the arithmetic that feeds
BENCH_sweep.json, in particular that a degenerate (zero-duration)
parallel timing yields *no* speedup figure rather than a fake 0.0x.
"""

import pathlib
import sys

BENCH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH))

from bench_wallclock import provenance, rate_of, speedup_of  # noqa: E402


def test_speedup_is_ratio():
    assert speedup_of(6.0, 3.0) == 2.0


def test_provenance_fields():
    import platform
    import re

    info = provenance()
    assert set(info) == {"commit", "timestamp_utc", "python"}
    assert info["python"] == platform.python_version()
    # ISO-8601 UTC, second resolution.
    assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z",
                        info["timestamp_utc"])
    # In this repo's checkout the commit is a short hash, possibly
    # marked dirty; outside a checkout it may legitimately be None.
    if info["commit"] is not None:
        assert re.fullmatch(r"[0-9a-f]{7,40}(-dirty)?", info["commit"])


def test_zero_parallel_time_yields_no_speedup():
    # A sub-resolution timer reading must not be reported as 0.0x
    # (which would read as "parallel infinitely slower").
    assert speedup_of(6.0, 0.0) is None
    assert speedup_of(6.0, -1.0) is None


def test_rate_guards_zero_duration():
    assert rate_of(1000, 2.0) == 500.0
    assert rate_of(1000, 0.0) is None

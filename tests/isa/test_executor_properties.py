"""Property-based tests of the executor's arithmetic and control flow."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import ProgramBuilder, execute
from repro.isa.executor import _wrap64

int64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
small = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


@given(int64, int64)
def test_wrap64_matches_two_complement(a, b):
    total = _wrap64(a + b)
    assert -(1 << 63) <= total < (1 << 63)
    assert (total - (a + b)) % (1 << 64) == 0


@given(int64)
def test_wrap64_identity_in_range(a):
    assert _wrap64(a) == a


def _binop_trace(op, a, b):
    builder = ProgramBuilder()
    builder.emit("li", "r1", a)
    builder.emit("li", "r2", b)
    builder.emit(op, "r3", "r1", "r2")
    builder.emit("halt")
    return execute(builder.build())


@settings(max_examples=40)
@given(small, small)
def test_add_commutes(a, b):
    assert (_binop_trace("add", a, b)[-1].result
            == _binop_trace("add", b, a)[-1].result)


@settings(max_examples=40)
@given(small, small)
def test_min_max_partition(a, b):
    lo = _binop_trace("min", a, b)[-1].result
    hi = _binop_trace("max", a, b)[-1].result
    assert {lo, hi} == {a, b} or (a == b and lo == hi == a)
    assert lo <= hi


@settings(max_examples=40)
@given(small, st.integers(min_value=1, max_value=(1 << 20)))
def test_div_rem_reconstruct(a, b):
    q = _binop_trace("div", a, b)[-1].result
    r = _binop_trace("rem", a, b)[-1].result
    assert q * b + r == a
    assert abs(r) < b


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=40))
def test_counted_loop_executes_n_times(n):
    builder = ProgramBuilder()
    builder.emit("li", "r1", 0)
    builder.emit("li", "r2", n)
    builder.label("loop")
    builder.emit("addi", "r1", "r1", 1)
    builder.emit("blt", "r1", "r2", "loop")
    builder.emit("halt")
    trace = execute(builder.build())
    adds = [d for d in trace if d.op.name == "addi"]
    assert len(adds) == n
    assert adds[-1].result == n


@settings(max_examples=25)
@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=30))
def test_memory_sum_loop(values):
    builder = ProgramBuilder()
    base = builder.data("arr", values)
    builder.emit("li", "r1", base)
    builder.emit("li", "r2", 0)
    builder.emit("li", "r3", len(values))
    builder.emit("li", "r4", 0)
    builder.label("loop")
    builder.emit("lw", "r5", "r1", 0)
    builder.emit("add", "r4", "r4", "r5")
    builder.emit("addi", "r1", "r1", 4)
    builder.emit("addi", "r2", "r2", 1)
    builder.emit("blt", "r2", "r3", "loop")
    builder.emit("halt")
    trace = execute(builder.build())
    sums = [d for d in trace if d.op.name == "add"]
    assert sums[-1].result == sum(values)


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=200))
def test_trace_determinism(cap):
    builder = ProgramBuilder()
    builder.label("spin")
    builder.emit("addi", "r1", "r1", 3)
    builder.emit("xor", "r2", "r2", "r1")
    builder.emit("j", "spin")
    program = builder.build()
    t1 = execute(program, cap)
    # A fresh run over a rebuilt (identical) program must match exactly.
    t2 = execute(builder.build(), cap)
    assert [(d.pc, d.result) for d in t1] == [(d.pc, d.result) for d in t2]

"""Every registered opcode is executable and timing-classified.

A golden cross-check between the opcode registry, the functional
executor's semantics tables and the FU latency table: adding an opcode
to one without the others should fail here, not deep inside a workload.
"""

import pytest

from repro.cluster import DEFAULT_LATENCIES
from repro.isa import OPCODES, ProgramBuilder, execute
from repro.isa.opcodes import OpClass


def exercise(op_name):
    """Build a minimal valid program around one opcode and run it."""
    b = ProgramBuilder()
    info = OPCODES[op_name]
    buf = b.data("buf", [3, 5, 7, 9])
    fbuf = b.data("fbuf", [1.5, 2.5], elem_size=8)
    b.emit("li", "r1", buf)
    b.emit("li", "r2", 2)
    b.emit("li", "r3", 1)
    b.emit("cvtif", "f1", "r2")
    b.emit("cvtif", "f2", "r3")
    b.emit("li", "r9", fbuf)
    operands = []
    reg_slot = 0
    from repro.isa.program import _expected_banks
    banks = _expected_banks(info)
    int_regs = iter(["r2", "r3", "r1"])
    fp_regs = iter(["f1", "f2", "f3"])
    for kind in info.signature:
        if kind == "R":
            operands.append("f5" if banks[reg_slot] == "f" else "r5")
            reg_slot += 1
        elif kind == "S":
            if banks[reg_slot] == "f":
                operands.append(next(fp_regs))
            else:
                # memory ops need a valid base address in the last slot
                operands.append("r1" if info.mem_size and
                                kind == "S" and reg_slot ==
                                len(banks) - 1 else next(int_regs))
            reg_slot += 1
        elif kind == "I":
            operands.append(0)
        elif kind == "A":
            operands.append(buf)
        elif kind == "L":
            operands.append("target")
    if info.mem_size == 8:
        # fp memory ops use the fp buffer as base
        operands[-2 if info.is_store else 1] = "r9"
    b.emit(op_name, *operands)
    b.label("target")
    b.emit("halt")
    return execute(b.build(), 100)


@pytest.mark.parametrize("op_name", sorted(OPCODES))
def test_opcode_executes(op_name):
    if op_name == "halt":
        pytest.skip("halt ends the trace by definition")
    trace = exercise(op_name)
    assert any(d.op.name == op_name for d in trace)


@pytest.mark.parametrize("op_name", sorted(OPCODES))
def test_opcode_has_latency(op_name):
    info = OPCODES[op_name]
    assert info.opclass in DEFAULT_LATENCIES
    assert DEFAULT_LATENCIES[info.opclass] >= 1


def test_opclass_coverage_is_total():
    assert set(DEFAULT_LATENCIES) == set(OpClass)

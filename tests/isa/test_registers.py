"""Unit tests for the register name space."""

import pytest

from repro.isa.registers import (FP_BASE, NUM_INT_REGS, NUM_LOGICAL_REGS,
                                 ZERO_REG, RegisterError, is_fp_reg,
                                 is_int_reg, reg_id, reg_name)


class TestRegId:
    def test_int_registers(self):
        assert reg_id("r0") == 0
        assert reg_id("r31") == 31

    def test_fp_registers(self):
        assert reg_id("f0") == FP_BASE
        assert reg_id("f31") == FP_BASE + 31

    def test_zero_register_constant(self):
        assert reg_id("r0") == ZERO_REG

    @pytest.mark.parametrize("bad", ["r32", "f32", "x1", "r", "", "r-1",
                                     "rr1", "r1x"])
    def test_malformed_names_raise(self, bad):
        with pytest.raises(RegisterError):
            reg_id(bad)


class TestRegName:
    def test_roundtrip_all_registers(self):
        for rid in range(NUM_LOGICAL_REGS):
            assert reg_id(reg_name(rid)) == rid

    def test_fp_boundary(self):
        assert reg_name(FP_BASE - 1) == f"r{NUM_INT_REGS - 1}"
        assert reg_name(FP_BASE) == "f0"

    @pytest.mark.parametrize("bad", [-1, NUM_LOGICAL_REGS, 1000])
    def test_out_of_range_raises(self, bad):
        with pytest.raises(RegisterError):
            reg_name(bad)


class TestBankPredicates:
    def test_is_fp_reg(self):
        assert not is_fp_reg(0)
        assert not is_fp_reg(31)
        assert is_fp_reg(32)
        assert is_fp_reg(63)

    def test_is_int_reg(self):
        assert is_int_reg(0)
        assert is_int_reg(31)
        assert not is_int_reg(32)
        assert not is_int_reg(-1)

"""Unit tests for the opcode registry metadata."""

import pytest

from repro.isa.opcodes import (FP_CLASSES, INT_CLASSES, OPCODES, OpClass,
                               opinfo)


class TestRegistry:
    def test_lookup_known(self):
        assert opinfo("add").opclass is OpClass.IALU
        assert opinfo("mul").opclass is OpClass.IMUL
        assert opinfo("div").opclass is OpClass.IDIV
        assert opinfo("fadd").opclass is OpClass.FALU
        assert opinfo("fmul").opclass is OpClass.FMUL
        assert opinfo("fdiv").opclass is OpClass.FDIV
        assert opinfo("lw").opclass is OpClass.LOAD
        assert opinfo("sw").opclass is OpClass.STORE

    def test_unknown_opcode_raises_keyerror_with_name(self):
        with pytest.raises(KeyError, match="bogus"):
            opinfo("bogus")

    def test_every_opcode_keyed_by_its_name(self):
        for name, info in OPCODES.items():
            assert info.name == name


class TestFlags:
    def test_branches(self):
        for name in ("beq", "bne", "blt", "bge"):
            info = opinfo(name)
            assert info.is_branch and info.is_cond_branch
        assert opinfo("j").is_branch
        assert not opinfo("j").is_cond_branch
        assert not opinfo("add").is_branch

    def test_memory_flags_and_sizes(self):
        assert opinfo("lw").is_load and opinfo("lw").mem_size == 4
        assert opinfo("lb").mem_size == 1
        assert opinfo("sw").is_store
        assert opinfo("flw").is_load and opinfo("flw").mem_size == 8
        assert opinfo("fsw").is_store
        assert not opinfo("add").is_load and not opinfo("add").is_store

    def test_dest_and_src_counts(self):
        assert opinfo("add").has_dest and opinfo("add").num_srcs == 2
        assert opinfo("sw").num_srcs == 2 and not opinfo("sw").has_dest
        assert opinfo("beq").num_srcs == 2 and not opinfo("beq").has_dest
        assert opinfo("li").num_srcs == 0 and opinfo("li").has_dest
        assert opinfo("nop").num_srcs == 0 and not opinfo("nop").has_dest

    def test_int_fp_side_partition(self):
        assert INT_CLASSES.isdisjoint(FP_CLASSES)
        assert set(OpClass) == INT_CLASSES | FP_CLASSES
        assert opinfo("lw").is_int
        assert opinfo("fadd").is_int is False

    def test_fp_compares_are_fp_side(self):
        # feq/flt/fle read fp registers and execute on the fp side even
        # though their destination is an integer register.
        for name in ("feq", "flt", "fle"):
            assert opinfo(name).opclass is OpClass.FALU


class TestSignatures:
    @pytest.mark.parametrize("name,sig", [
        ("add", ("R", "S", "S")),
        ("addi", ("R", "S", "I")),
        ("li", ("R", "I")),
        ("la", ("R", "A")),
        ("lw", ("R", "S", "I")),
        ("sw", ("S", "S", "I")),
        ("beq", ("S", "S", "L")),
        ("j", ("L",)),
        ("halt", ()),
    ])
    def test_signature(self, name, sig):
        assert opinfo(name).signature == sig

"""Round-trip tests: program -> disassembly -> program."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import ProgramBuilder, assemble, disassemble, execute
from repro.workloads import synthetic


def roundtrip_trace_equal(program, cap=3000):
    """Execute original and reassembled program; compare the streams.

    Holds for integer programs with word-granular data (see the
    disassembler's documented scope).
    """
    text = disassemble(program)
    rebuilt = assemble(text)
    original = [(d.pc, d.op.name, d.result, d.mem_addr)
                for d in execute(program, cap)]
    redone = [(d.pc, d.op.name, d.result, d.mem_addr)
              for d in execute(rebuilt, cap)]
    assert original == redone


def test_loop_with_data_roundtrips():
    b = ProgramBuilder()
    base = b.data("nums", [5, 6, 7, 8])
    b.emit("li", "r1", base)
    b.emit("li", "r2", 0)
    b.emit("li", "r3", 4)
    b.emit("li", "r4", 0)
    b.label("loop")
    b.emit("lw", "r5", "r1", 0)
    b.emit("add", "r4", "r4", "r5")
    b.emit("sw", "r4", "r1", 0)
    b.emit("addi", "r1", "r1", 4)
    b.emit("addi", "r2", "r2", 1)
    b.emit("blt", "r2", "r3", "loop")
    b.emit("halt")
    roundtrip_trace_equal(b.build())


def test_synthetic_programs_roundtrip():
    for factory in (synthetic.counted_loop, synthetic.strided_stream,
                    synthetic.random_branches,
                    synthetic.store_load_pairs):
        roundtrip_trace_equal(factory(), cap=1500)


def test_disassembly_is_readable():
    b = ProgramBuilder()
    b.emit("li", "r1", 3)
    b.label("spin")
    b.emit("addi", "r1", "r1", -1)
    b.emit("bne", "r1", "r0", "spin")
    b.emit("halt")
    text = disassemble(b.build())
    assert "addi r1, r1, -1" in text
    assert "bne r1, r0, L1" in text
    assert text.count("L1:") == 1


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["add", "sub", "xor", "min", "mul",
                               "addi", "slli"]),
              st.integers(8, 15), st.integers(8, 15),
              st.integers(-7, 7)),
    min_size=1, max_size=25),
    iters=st.integers(min_value=1, max_value=10))
def test_random_programs_roundtrip(ops, iters):
    b = ProgramBuilder()
    for i in range(8, 16):
        b.emit("li", f"r{i}", i)
    b.emit("li", "r1", 0)
    b.emit("li", "r2", iters)
    b.label("loop")
    for op, a, c, imm in ops:
        if op in ("addi", "slli"):
            b.emit(op, f"r{a}", f"r{c}", abs(imm))
        else:
            b.emit(op, f"r{a}", f"r{a}", f"r{c}")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "loop")
    b.emit("halt")
    roundtrip_trace_equal(b.build())

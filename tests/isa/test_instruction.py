"""Unit tests for the static/dynamic instruction records."""

from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import OpClass, opinfo

from ..conftest import make_dyn


class TestStaticInstruction:
    def test_repr_contains_operands(self):
        inst = Instruction(opinfo("add"), 3, (1, 2), None, None, 0x1000)
        text = repr(inst)
        assert "add" in text and "r3" in text and "r1" in text

    def test_repr_with_imm_and_target(self):
        inst = Instruction(opinfo("beq"), None, (1, 2), None, 0x2000, 0x1004)
        assert "@0x2000" in repr(inst)


class TestDynInst:
    def test_branch_views(self):
        branch = make_dyn(0, 0x1000, op="bne", srcs=(1, 2), taken=True,
                          target=0x1010)
        assert branch.is_branch and branch.is_cond_branch
        jump = make_dyn(1, 0x1004, op="j", taken=True, target=0x1000)
        assert jump.is_branch and not jump.is_cond_branch
        add = make_dyn(2, 0x1008, op="add", dest=1, srcs=(2, 3))
        assert not add.is_branch

    def test_memory_views(self):
        load = make_dyn(0, 0, op="lw", dest=1, srcs=(2,), mem_addr=100)
        assert load.is_load and not load.is_store
        assert load.opclass is OpClass.LOAD
        store = make_dyn(1, 4, op="sw", srcs=(1, 2), mem_addr=100)
        assert store.is_store

    def test_src_is_fp_uses_register_bank(self):
        fsw = make_dyn(0, 0, op="fsw", srcs=(40, 2), mem_addr=0)
        assert fsw.src_is_fp(0)       # the stored fp value
        assert not fsw.src_is_fp(1)   # the integer base address

    def test_repr_smoke(self):
        dyn = make_dyn(7, 0x1234, op="mul", dest=5, srcs=(1, 2))
        text = repr(dyn)
        assert "#7" in text and "mul" in text and "r5" in text

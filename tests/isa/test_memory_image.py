"""Unit tests for the functional memory image."""

import pytest

from repro.isa.memory_image import MemoryImage


def test_uninitialized_reads_zero():
    mem = MemoryImage()
    assert mem.load(0x1234) == 0


def test_store_load():
    mem = MemoryImage()
    mem.store(8, 99)
    assert mem.load(8) == 99
    assert mem.load(12) == 0


def test_alloc_disjoint_and_aligned():
    mem = MemoryImage()
    a = mem.alloc(10, align=8)
    c = mem.alloc(4, align=8)
    assert a % 8 == 0 and c % 8 == 0
    assert c >= a + 10


def test_alloc_words_initializes():
    mem = MemoryImage()
    base = mem.alloc_words([5, 6, 7])
    assert [mem.load(base + 4 * i) for i in range(3)] == [5, 6, 7]


def test_alloc_words_elem_size_8():
    mem = MemoryImage()
    base = mem.alloc_words([1.5, 2.5], elem_size=8)
    assert mem.load(base + 8) == 2.5


def test_negative_alloc_rejected():
    with pytest.raises(ValueError):
        MemoryImage().alloc(-1)


def test_snapshot_is_a_copy():
    mem = MemoryImage()
    mem.store(0, 1)
    snap = mem.snapshot()
    mem.store(0, 2)
    assert snap[0] == 1
    assert len(mem) == 1

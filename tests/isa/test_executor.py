"""Golden tests of the functional executor's opcode semantics."""

import pytest

from repro.isa import ProgramBuilder, execute
from repro.isa.executor import ExecutionError, FunctionalExecutor


def run_and_last_value(emits, max_instructions=10_000):
    """Build, run, and return the result of the last value-producing op."""
    b = ProgramBuilder()
    for line in emits:
        if line[0] == "label":
            b.label(line[1])
        else:
            b.emit(*line)
    b.emit("halt")
    trace = execute(b.build(), max_instructions)
    for dyn in reversed(trace):
        if dyn.result is not None:
            return dyn.result
    return None


class TestIntegerArithmetic:
    @pytest.mark.parametrize("op,a,c,expected", [
        ("add", 5, 7, 12),
        ("sub", 5, 7, -2),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("sll", 3, 4, 48),
        ("srl", 48, 4, 3),
        ("sra", -16, 2, -4),
        ("slt", 3, 5, 1),
        ("slt", 5, 3, 0),
        ("min", 3, -5, -5),
        ("max", 3, -5, 3),
        ("mul", 7, -6, -42),
        ("div", 17, 5, 3),
        ("div", -17, 5, -3),     # truncation toward zero
        ("rem", 17, 5, 2),
        ("rem", -17, 5, -2),
    ])
    def test_binops(self, op, a, c, expected):
        value = run_and_last_value([
            ("li", "r1", a), ("li", "r2", c), (op, "r3", "r1", "r2")])
        assert value == expected

    def test_divide_by_zero_yields_zero(self):
        assert run_and_last_value([
            ("li", "r1", 9), ("li", "r2", 0), ("div", "r3", "r1", "r2")]) == 0
        assert run_and_last_value([
            ("li", "r1", 9), ("li", "r2", 0), ("rem", "r3", "r1", "r2")]) == 0

    def test_wraparound_64bit(self):
        value = run_and_last_value([
            ("li", "r1", (1 << 62)), ("li", "r2", 4),
            ("mul", "r3", "r1", "r2")])
        assert value == 0  # 2^64 wraps to zero

    def test_sltu_treats_negative_as_large(self):
        assert run_and_last_value([
            ("li", "r1", -1), ("li", "r2", 1),
            ("sltu", "r3", "r1", "r2")]) == 0

    def test_immediates(self):
        assert run_and_last_value([
            ("li", "r1", 10), ("addi", "r2", "r1", -3)]) == 7
        assert run_and_last_value([
            ("li", "r1", 0b1111), ("andi", "r2", "r1", 0b0110)]) == 0b0110
        assert run_and_last_value([
            ("li", "r1", 5), ("slli", "r2", "r1", 2)]) == 20

    def test_mov_and_nop(self):
        assert run_and_last_value([
            ("li", "r1", 42), ("mov", "r2", "r1")]) == 42


class TestZeroRegister:
    def test_reads_as_zero(self):
        assert run_and_last_value([
            ("li", "r1", 5), ("add", "r2", "r1", "r0")]) == 5

    def test_writes_discarded(self):
        b = ProgramBuilder()
        b.emit("li", "r0", 99)
        b.emit("add", "r1", "r0", "r0")
        b.emit("halt")
        trace = execute(b.build())
        assert trace[-1].result == 0


class TestMemory:
    def test_store_load_roundtrip(self):
        b = ProgramBuilder()
        buf = b.zeros("buf", 2)
        b.emit("li", "r1", buf)
        b.emit("li", "r2", 1234)
        b.emit("sw", "r2", "r1", 4)
        b.emit("lw", "r3", "r1", 4)
        b.emit("halt")
        trace = execute(b.build())
        assert trace[-1].result == 1234
        assert trace[-1].mem_addr == buf + 4
        assert trace[-2].mem_addr == buf + 4

    def test_lb_masks_to_byte(self):
        b = ProgramBuilder()
        buf = b.data("buf", [0x1FF])
        b.emit("li", "r1", buf)
        b.emit("lb", "r2", "r1", 0)
        b.emit("halt")
        assert execute(b.build())[-1].result == 0xFF

    def test_fp_memory(self):
        b = ProgramBuilder()
        buf = b.data("buf", [2.5], elem_size=8)
        out = b.zeros("out", 1, elem_size=8)
        b.emit("li", "r1", buf)
        b.emit("li", "r2", out)
        b.emit("flw", "f1", "r1", 0)
        b.emit("fadd", "f2", "f1", "f1")
        b.emit("fsw", "f2", "r2", 0)
        b.emit("halt")
        program = b.build()
        execute(program)
        assert program.memory.load(out) == 5.0


class TestBranches:
    def test_loop_iterates_exactly(self):
        b = ProgramBuilder()
        b.emit("li", "r1", 0)
        b.emit("li", "r2", 5)
        b.label("loop")
        b.emit("addi", "r1", "r1", 1)
        b.emit("blt", "r1", "r2", "loop")
        b.emit("halt")
        trace = execute(b.build())
        branches = [d for d in trace if d.is_cond_branch]
        assert [d.taken for d in branches] == [True] * 4 + [False]
        assert branches[0].target == branches[-1].target

    @pytest.mark.parametrize("op,a,c,taken", [
        ("beq", 3, 3, True), ("beq", 3, 4, False),
        ("bne", 3, 4, True), ("bne", 3, 3, False),
        ("blt", -1, 0, True), ("blt", 0, 0, False),
        ("bge", 0, 0, True), ("bge", -1, 0, False),
    ])
    def test_branch_conditions(self, op, a, c, taken):
        b = ProgramBuilder()
        b.emit("li", "r1", a)
        b.emit("li", "r2", c)
        b.emit(op, "r1", "r2", "target")
        b.emit("nop")
        b.label("target")
        b.emit("halt")
        trace = execute(b.build())
        branch = [d for d in trace if d.is_cond_branch][0]
        assert branch.taken is taken
        expected_len = 3 if taken else 4
        assert len(trace) == expected_len

    def test_unconditional_jump(self):
        b = ProgramBuilder()
        b.emit("j", "over")
        b.emit("li", "r1", 1)   # skipped
        b.label("over")
        b.emit("halt")
        trace = execute(b.build())
        assert len(trace) == 1
        assert trace[0].taken is True


class TestFloatingPoint:
    def test_fp_ops(self):
        b = ProgramBuilder()
        b.emit("li", "r1", 3)
        b.emit("cvtif", "f1", "r1")
        b.emit("li", "r2", 2)
        b.emit("cvtif", "f2", "r2")
        b.emit("fmul", "f3", "f1", "f2")   # 6.0
        b.emit("fdiv", "f4", "f3", "f2")   # 3.0
        b.emit("fsub", "f5", "f4", "f2")   # 1.0
        b.emit("fneg", "f6", "f5")         # -1.0
        b.emit("cvtfi", "r3", "f6")
        b.emit("halt")
        trace = execute(b.build())
        assert trace[-1].result == -1

    def test_fp_compares_produce_int(self):
        b = ProgramBuilder()
        b.emit("li", "r1", 1)
        b.emit("cvtif", "f1", "r1")
        b.emit("li", "r2", 2)
        b.emit("cvtif", "f2", "r2")
        b.emit("flt", "r3", "f1", "f2")
        b.emit("halt")
        assert execute(b.build())[-1].result == 1

    def test_fdiv_by_zero_yields_zero(self):
        b = ProgramBuilder()
        b.emit("cvtif", "f1", "r0")
        b.emit("li", "r1", 7)
        b.emit("cvtif", "f2", "r1")
        b.emit("fdiv", "f3", "f2", "f1")
        b.emit("cvtfi", "r2", "f3")
        b.emit("halt")
        assert execute(b.build())[-1].result == 0


class TestExecutorMechanics:
    def test_instruction_cap_truncates(self):
        b = ProgramBuilder()
        b.label("spin")
        b.emit("addi", "r1", "r1", 1)
        b.emit("j", "spin")
        trace = execute(b.build(), max_instructions=100)
        assert len(trace) == 100

    def test_seq_numbers_consecutive(self):
        b = ProgramBuilder()
        for _ in range(5):
            b.emit("nop")
        b.emit("halt")
        trace = execute(b.build())
        assert [d.seq for d in trace] == list(range(5))

    def test_src_values_recorded(self):
        b = ProgramBuilder()
        b.emit("li", "r1", 11)
        b.emit("li", "r2", 22)
        b.emit("add", "r3", "r1", "r2")
        b.emit("halt")
        trace = execute(b.build())
        assert trace[-1].src_values == (11, 22)

    def test_falling_off_code_raises(self):
        b = ProgramBuilder()
        b.emit("nop")   # no halt
        with pytest.raises(ExecutionError, match="PC out of code segment"):
            execute(b.build())

    def test_generator_is_lazy(self):
        b = ProgramBuilder()
        b.label("spin")
        b.emit("j", "spin")
        executor = FunctionalExecutor(b.build(), max_instructions=10**9)
        stream = executor.run()
        first = next(stream)
        assert first.seq == 0

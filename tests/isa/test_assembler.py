"""Unit tests for the text assembler."""

import pytest

from repro.isa import AssemblerError, assemble, execute


def test_basic_program_with_labels_and_comments():
    program = assemble("""
    # sum 1..4
            li   r1, 0     # acc
            li   r2, 1     # i
            li   r3, 5
    loop:   add  r1, r1, r2
            addi r2, r2, 1
            blt  r2, r3, loop
            halt
    """)
    trace = execute(program)
    adds = [d for d in trace if d.op.name == "add"]
    assert adds[-1].result == 10


def test_data_and_zeros_directives():
    program = assemble("""
    .data  nums  3 5 7
    .zeros out   2
            la r1, nums
            lw r2, r1, 8
            halt
    """)
    assert execute(program)[-1].result == 7


def test_commas_optional():
    program = assemble("add r1 r2 r3\nhalt\n")
    assert program.instructions[0].op.name == "add"


def test_label_on_its_own_line():
    program = assemble("""
    start:
        j start
    """)
    assert program.labels["start"] == program.code_base


def test_hex_and_negative_immediates():
    program = assemble("""
        li r1, 0x10
        addi r2, r1, -3
        halt
    """)
    assert execute(program)[1].result == 13


@pytest.mark.parametrize("source,message", [
    ("bogus r1, r2", "unknown opcode"),
    (".data", ".data needs"),
    (".zeros buf", ".zeros needs"),
    ("li r1, xyz", "expected a number"),
    ("x: x: nop", "duplicate"),
    (": nop", "empty label"),
    ("j nowhere\nhalt", "nowhere"),
])
def test_errors_carry_context(source, message):
    with pytest.raises(AssemblerError, match=message):
        assemble(source)


def test_error_includes_line_number():
    with pytest.raises(AssemblerError, match="line 3"):
        assemble("nop\nnop\nbogus r1\n")

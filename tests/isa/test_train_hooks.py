"""Functional-warming train hooks: the compiled fast-forward path with
hooks installed must observe exactly what decode observes, and the
pre-bound factory closures must train bit-identically to the generic
``(pc, slot, actual)`` callbacks they replace."""

from repro.core import make_config
from repro.frontend.branch_predictor import CombinedPredictor
from repro.isa.executor import FunctionalExecutor
from repro.predictor.stride import StridePredictor
from repro.workloads import build_workload

WORKLOAD = "gsmenc"
LENGTH = 30_000


def _predictor_pair(config):
    vp = StridePredictor(entries=config.vp_entries)
    bp = CombinedPredictor()
    return vp, bp


def _vp_state(vp):
    return (list(vp._last), list(vp._stride), list(vp._prev_stride),
            list(vp._counter))


def _bp_state(bp):
    return (list(bp.bimodal._table.counters),
            list(bp.gshare._table.counters),
            list(bp._chooser.counters),
            bp.gshare.history)


def _run(config, *, factories):
    vp, bp = _predictor_pair(config)
    executor = FunctionalExecutor(build_workload(WORKLOAD), LENGTH)
    kwargs = dict(
        value=lambda pc, slot, actual: vp.predict_update(pc, slot, actual),
        branch=lambda pc, taken: bp.update(pc, taken))
    if factories:
        kwargs.update(value_factory=vp.trainer, branch_factory=bp.trainer)
    executor.set_train_hooks(**kwargs)
    executor.skip(LENGTH)
    return executor, vp, bp


class TestFactoryEquivalence:
    def test_factory_training_is_bit_identical_to_generic(self):
        config = make_config(2, predictor="stride", steering="vpb")
        generic_exec, gvp, gbp = _run(config, factories=False)
        factory_exec, fvp, fbp = _run(config, factories=True)

        assert generic_exec.seq == factory_exec.seq
        assert generic_exec.int_regs == factory_exec.int_regs
        assert _vp_state(gvp) == _vp_state(fvp)
        assert _bp_state(gbp) == _bp_state(fbp)

    def test_architectural_results_unchanged_by_hooks(self):
        config = make_config(2, predictor="stride", steering="vpb")
        plain = FunctionalExecutor(build_workload(WORKLOAD), LENGTH)
        plain.skip(LENGTH)
        hooked, _, _ = _run(config, factories=True)
        assert hooked.seq == plain.seq
        assert hooked.pc == plain.pc
        assert hooked.int_regs == plain.int_regs
        assert hooked.fp_regs == plain.fp_regs

    def test_training_actually_happened(self):
        config = make_config(2, predictor="stride", steering="vpb")
        _, vp, bp = _run(config, factories=True)
        untrained_vp, untrained_bp = _predictor_pair(config)
        assert _vp_state(vp) != _vp_state(untrained_vp)
        assert _bp_state(bp) != _bp_state(untrained_bp)

    def test_uninstall_restores_plain_skip(self):
        executor = FunctionalExecutor(build_workload(WORKLOAD), LENGTH)
        vp, bp = _predictor_pair(make_config(2, predictor="stride"))
        executor.set_train_hooks(value_factory=vp.trainer,
                                 branch_factory=bp.trainer,
                                 value=lambda *a: None,
                                 branch=lambda *a: None)
        executor.skip(1_000)
        state_after = _vp_state(vp)
        executor.set_train_hooks()     # all None: uninstall
        executor.skip(1_000)
        assert _vp_state(vp) == state_after

"""Unit tests for the program builder and label resolution."""

import pytest

from repro.isa.program import (CODE_BASE, INSTRUCTION_BYTES, ProgramBuilder,
                               ProgramError)


def test_simple_program_pcs_and_lookup():
    b = ProgramBuilder()
    b.emit("li", "r1", 5)
    b.emit("addi", "r1", "r1", 1)
    b.emit("halt")
    program = b.build()
    assert len(program) == 3
    assert program.instructions[0].pc == CODE_BASE
    assert program.instructions[1].pc == CODE_BASE + INSTRUCTION_BYTES
    assert program.at(CODE_BASE + INSTRUCTION_BYTES).op.name == "addi"


def test_label_resolution_forward_and_backward():
    b = ProgramBuilder()
    b.label("top")
    b.emit("beq", "r0", "r0", "bottom")   # forward
    b.emit("j", "top")                    # backward
    b.label("bottom")
    b.emit("halt")
    program = b.build()
    beq, jmp, _ = program.instructions
    assert beq.target == CODE_BASE + 2 * INSTRUCTION_BYTES
    assert jmp.target == CODE_BASE


def test_data_allocation_and_la():
    b = ProgramBuilder()
    addr = b.data("table", [10, 20, 30])
    b.emit("la", "r1", "table")
    b.emit("halt")
    program = b.build()
    assert program.instructions[0].imm == addr
    assert program.memory.load(addr) == 10
    assert program.memory.load(addr + 8) == 30
    assert program.data_labels["table"] == addr


def test_zeros_allocates_disjoint_regions():
    b = ProgramBuilder()
    a = b.zeros("a", 4)
    c = b.zeros("c", 4)
    assert c >= a + 16


def test_la_accepts_raw_address():
    b = ProgramBuilder()
    b.emit("la", "r1", 0x2000)
    b.emit("halt")
    assert b.build().instructions[0].imm == 0x2000


def test_operand_count_mismatch_raises():
    b = ProgramBuilder()
    with pytest.raises(ProgramError, match="expected 3 operands"):
        b.emit("add", "r1", "r2")


def test_duplicate_labels_raise():
    b = ProgramBuilder()
    b.label("x")
    b.emit("nop")
    with pytest.raises(ProgramError, match="duplicate code label"):
        b.label("x")
    b.data("d", [1])
    with pytest.raises(ProgramError, match="duplicate data label"):
        b.data("d", [2])


def test_unknown_labels_raise_at_build():
    b = ProgramBuilder()
    b.emit("j", "nowhere")
    with pytest.raises(ProgramError, match="nowhere"):
        b.build()
    b2 = ProgramBuilder()
    b2.emit("la", "r1", "nodata")
    with pytest.raises(ProgramError, match="nodata"):
        b2.build()


def test_register_bank_validation():
    b = ProgramBuilder()
    b.emit("fadd", "r1", "f2", "f3")  # integer dest on a pure-fp opcode
    with pytest.raises(ProgramError, match="fp register"):
        b.build()


def test_bank_validation_through_emit():
    b = ProgramBuilder()
    b.emit("fadd", "f1", "f2", "r3")  # accepted lazily...
    with pytest.raises(ProgramError, match="fp register"):
        b.build()                     # ...rejected at assembly


def test_mixed_bank_opcodes_accept_correct_banks():
    b = ProgramBuilder()
    b.emit("cvtif", "f1", "r2")
    b.emit("cvtfi", "r1", "f2")
    b.emit("flt", "r3", "f1", "f2")
    b.emit("flw", "f4", "r5", 0)
    b.emit("fsw", "f4", "r5", 8)
    b.emit("halt")
    program = b.build()
    assert len(program) == 6


def test_immediate_type_checked():
    b = ProgramBuilder()
    b.emit("addi", "r1", "r1", "oops")
    with pytest.raises(ProgramError, match="immediate"):
        b.build()


def test_here_reports_next_index():
    b = ProgramBuilder()
    assert b.here() == 0
    b.emit("nop")
    assert b.here() == 1

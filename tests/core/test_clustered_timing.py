"""Clustered-specific timing: copy costs, bus latency, bandwidth limits.

Round-robin steering makes cluster assignment deterministic, so a serial
chain alternates clusters and every dependence hop pays the full copy
path: +1 cycle for the copy node plus the bus latency (§2.1: "since a
copy instruction makes the dependence chain one node longer, it
increases by one cycle the total effective latency between the producer
and the remote dependent instruction (in addition to the bus latency)").
"""

import pytest

from repro.core import make_config, simulate
from repro.isa import ProgramBuilder, execute
from repro.workloads import synthetic


def serial_cross_cluster_trace(n_ops=400):
    b = ProgramBuilder()
    b.emit("li", "r1", 1)
    b.emit("li", "r6", 0)
    b.emit("li", "r7", 40)
    b.label("loop")
    for _ in range(10):
        b.emit("add", "r1", "r1", "r1")
    b.emit("andi", "r1", "r1", 255)
    b.emit("ori", "r1", "r1", 1)
    b.emit("addi", "r6", "r6", 1)
    b.emit("blt", "r6", "r7", "loop")
    b.emit("halt")
    return execute(b.build(), n_ops + 200)


class TestCopyLatency:
    def test_round_robin_chain_pays_copy_plus_bus(self):
        """Alternating clusters turns a 1-cycle link into 1+1+L."""
        trace = serial_cross_cluster_trace()
        local = simulate(list(trace), make_config(1)).stats.cycles
        remote = simulate(list(trace),
                          make_config(2, steering="round-robin")).stats.cycles
        # every chain link gains ~2 cycles (copy +1, bus +1)
        assert remote > 1.8 * local

    def test_bus_latency_scales_chain_cost(self):
        trace = serial_cross_cluster_trace()
        cycles = {}
        for latency in (1, 3):
            config = make_config(2, steering="round-robin",
                                 comm_latency=latency)
            cycles[latency] = simulate(list(trace), config).stats.cycles
        links = sum(1 for d in trace if d.op.name == "add")
        per_link = (cycles[3] - cycles[1]) / links
        assert 1.5 <= per_link <= 2.5   # ~2 extra cycles per hop

    def test_copies_commit_and_count(self):
        trace = serial_cross_cluster_trace()
        result = simulate(list(trace),
                          make_config(2, steering="round-robin"))
        stats = result.stats
        assert stats.dispatched_copies > 200
        assert stats.committed_copies == stats.dispatched_copies
        assert stats.communications >= stats.dispatched_copies


class TestBandwidthLimits:
    def test_single_path_rejections_recorded(self):
        from repro.core.processor import Processor
        trace = execute(synthetic.parallel_chains(8, 16), 8_000)
        processor = Processor(
            make_config(4, comm_paths_per_cluster=1,
                        steering="round-robin"), iter(list(trace)))
        processor.run()
        # Heavy scatter on one path per cluster must hit the limit.
        assert processor.interconnect.rejected > 0

    def test_bandwidth_only_slows_never_breaks(self):
        trace = execute(synthetic.parallel_chains(8, 16), 8_000)
        unbounded = simulate(list(trace),
                             make_config(4, steering="round-robin"))
        limited = simulate(
            list(trace), make_config(4, steering="round-robin",
                                     comm_paths_per_cluster=1))
        assert limited.stats.committed_insts == len(trace)
        assert limited.ipc <= unbounded.ipc + 0.01

    def test_sane_steering_barely_needs_bandwidth(self):
        """Figure 4(b)'s punchline: with the real steering heuristic one
        path per cluster costs little."""
        trace = execute(synthetic.parallel_chains(8, 16), 8_000)
        unbounded = simulate(list(trace), make_config(4))
        limited = simulate(list(trace),
                           make_config(4, comm_paths_per_cluster=1))
        assert limited.ipc > 0.9 * unbounded.ipc


class TestVPBridgesTheWire:
    def test_prediction_beats_copies_on_round_robin_chain(self):
        """A stride-predictable chain scattered by round-robin steering:
        value prediction replaces almost every copy with a correct,
        communication-free verification-copy."""
        trace = execute(synthetic.counted_loop(4), 8_000)
        plain = simulate(list(trace), make_config(2,
                                                  steering="round-robin"))
        predicted = simulate(
            list(trace), make_config(2, steering="round-robin",
                                     predictor="stride"))
        assert predicted.comm_per_inst < 0.6 * plain.comm_per_inst
        assert predicted.ipc > plain.ipc

    def test_vcopies_in_producer_cluster_commit(self):
        trace = execute(synthetic.counted_loop(4), 8_000)
        result = simulate(
            list(trace), make_config(2, steering="round-robin",
                                     predictor="stride"))
        stats = result.stats
        assert stats.dispatched_vcopies > 0
        assert stats.committed_vcopies == stats.dispatched_vcopies


class TestRenameDepthKnob:
    @pytest.mark.parametrize("extra", [0, 1, 2])
    def test_deeper_rename_monotonically_slower_or_equal(self, extra):
        trace = execute(synthetic.counted_loop(4), 6_000)
        result = simulate(list(trace),
                          make_config(4, extra_rename_cycles=extra))
        assert result.stats.committed_insts == len(trace)

    def test_depth_ordering(self):
        trace = execute(synthetic.random_branches(512), 8_000)
        cycles = [simulate(list(trace),
                           make_config(4, extra_rename_cycles=extra)
                           ).stats.cycles
                  for extra in (0, 2)]
        # Mispredict-heavy code pays for a deeper front end.
        assert cycles[1] > cycles[0]


class TestFreeCopyIssue:
    def test_free_copies_never_slower(self):
        trace = serial_cross_cluster_trace()
        paper = simulate(list(trace),
                         make_config(2, steering="round-robin"))
        free = simulate(list(trace),
                        make_config(2, steering="round-robin",
                                    free_copy_issue=True))
        assert free.stats.committed_insts == paper.stats.committed_insts
        assert free.stats.cycles <= paper.stats.cycles

    def test_free_copies_keep_wire_latency(self):
        """§2.1 extension removes the width cost, not the bus latency:
        a cross-cluster chain still pays per hop."""
        trace = serial_cross_cluster_trace()
        local = simulate(list(trace), make_config(1)).stats.cycles
        free = simulate(list(trace),
                        make_config(2, steering="round-robin",
                                    free_copy_issue=True)).stats.cycles
        assert free > 1.5 * local

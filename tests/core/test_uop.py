"""Unit tests for the in-flight uop/operand records."""

from repro.core.uop import (KIND_COPY, KIND_INST, KIND_VCOPY, MODE_LOCAL,
                            MODE_PRED, MODE_ZERO, Operand, STATE_WAITING,
                            Uop)
from repro.isa.opcodes import OpClass

from ..conftest import make_dyn


def test_kind_predicates():
    dyn = make_dyn(0, 0x1000, op="add", dest=1, srcs=(2, 3))
    inst = Uop(KIND_INST, dyn, 0, 0, True, OpClass.IALU)
    copy = Uop(KIND_COPY, dyn, 1, 0, True, None)
    vcopy = Uop(KIND_VCOPY, dyn, 2, 0, True, None)
    assert inst.is_inst and not inst.is_copy and not inst.is_vcopy
    assert copy.is_copy and not copy.is_inst
    assert vcopy.is_vcopy
    assert inst.kind_name() == "inst"
    assert copy.kind_name() == "copy"
    assert vcopy.kind_name() == "vcopy"


def test_memory_predicates_follow_dyn():
    load = Uop(KIND_INST, make_dyn(0, 0, op="lw", dest=1, srcs=(2,),
                                   mem_addr=64), 0, 0, True, OpClass.LOAD)
    store = Uop(KIND_INST, make_dyn(1, 4, op="sw", srcs=(1, 2),
                                    mem_addr=64), 1, 0, True, OpClass.STORE)
    copy = Uop(KIND_COPY, load.dyn, 2, 0, True, None)
    assert load.is_load and not load.is_store
    assert store.is_store and not store.is_load
    assert not copy.is_load and not copy.is_store   # copies never touch mem


def test_initial_state():
    uop = Uop(KIND_INST, make_dyn(0, 0, op="add", dest=1, srcs=(2, 3)),
              5, 2, True, OpClass.IALU)
    assert uop.state == STATE_WAITING
    assert uop.generation == 0
    assert uop.unverified == 0
    assert uop.readers == [] and uop.verify_list == []
    assert uop.order == 5 and uop.cluster == 2


def test_operand_defaults():
    operand = Operand(MODE_LOCAL, preg=7, slot=1)
    assert operand.mode == MODE_LOCAL
    assert operand.preg == 7
    assert operand.correct is True
    assert not operand.verified
    assert operand.slot == 1
    zero = Operand(MODE_ZERO)
    assert zero.preg is None
    pred = Operand(MODE_PRED, 3, correct=False)
    assert not pred.correct


def test_repr_smoke():
    uop = Uop(KIND_INST, make_dyn(0, 0, op="mul", dest=1, srcs=(2, 3)),
              9, 1, True, OpClass.IMUL)
    text = repr(uop)
    assert "mul" in text and "order=9" in text

"""Property test of the batched ready-list (``next_try``) wake invariant.

The issue stage skips any :class:`~repro.cluster.issue_queue.IssueQueue`
whose ``next_try`` bound lies in the future (docs in issue_queue.py).
That is only sound if the bound is *conservative-low*: a queue must
never sleep through a cycle at which one of its entries could have
issued.  Two properties pin it:

1. **End-to-end equivalence** — on randomly generated programs and
   configurations, a simulator whose queues are forced to scan every
   cycle (the plain linear rescan the batching replaced) issues the
   same uops, in the same order, on the same cycles, and retires the
   same committed stream with bit-identical stats.
2. **Bound soundness** — under random dispatch / reinsert / issue
   sequences against a bare queue, ``next_try`` never exceeds any
   entry's earliest possible issue cycle (``max(min_issue_cycle,
   wake_cycle)``), so the issue stage can never skip a wakeable entry.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cluster.cluster as cluster_mod
from repro.cluster.issue_queue import NEXT_TRY_IDLE, IssueQueue
from repro.core import make_config, simulate
from repro.isa import ProgramBuilder, execute
from repro.obs import EventTracer, RingBufferSink
from repro.obs.events import EV_COMMIT, EV_ISSUE

INT_BINOPS = ["add", "sub", "and", "or", "xor", "min", "max", "mul"]
SCRATCH = [f"r{i}" for i in range(8, 24)]


class AlwaysScanQueue(IssueQueue):
    """An IssueQueue whose ``next_try`` bound never defers a scan.

    Reading ``next_try`` always yields 0, so the issue stage scans the
    queue every cycle — the exact per-cycle linear rescan the batching
    replaced.  Writes are discarded: scanning a queue none of whose
    entries can issue is a no-op, so if batching is sound this changes
    nothing observable.
    """

    @property
    def next_try(self) -> int:  # type: ignore[override]
        return 0

    @next_try.setter
    def next_try(self, value: int) -> None:
        pass


@st.composite
def random_programs(draw):
    body_ops = draw(st.lists(
        st.tuples(st.sampled_from(INT_BINOPS + ["lw", "sw", "addi", "fp"]),
                  st.integers(0, len(SCRATCH) - 1),
                  st.integers(0, len(SCRATCH) - 1),
                  st.integers(0, 15)),
        min_size=3, max_size=30))
    iters = draw(st.integers(min_value=2, max_value=25))
    b = ProgramBuilder()
    buf = b.data("buf", list(range(16)))
    b.emit("li", "r1", buf)
    b.emit("li", "r6", 0)
    b.emit("li", "r7", iters)
    for i, reg in enumerate(SCRATCH):
        b.emit("li", reg, i + 1)
    b.emit("li", "r24", 2)
    b.emit("cvtif", "f8", "r24")
    b.emit("cvtif", "f9", "r24")
    b.label("loop")
    for op, a, c, imm in body_ops:
        ra, rc = SCRATCH[a], SCRATCH[c]
        if op == "lw":
            b.emit("lw", ra, "r1", 4 * (imm % 16))
        elif op == "sw":
            b.emit("sw", ra, "r1", 4 * (imm % 16))
        elif op == "addi":
            b.emit("addi", ra, rc, imm - 8)
        elif op == "fp":
            b.emit("fadd", "f8", "f8", "f9")
        else:
            b.emit(op, ra, ra, rc)
    b.emit("addi", "r6", "r6", 1)
    b.emit("blt", "r6", "r7", "loop")
    b.emit("halt")
    return b.build()


def _issue_and_commit_stream(trace, config, force_linear):
    """(issue events, commit events, stats dict) of one simulation."""
    sink = RingBufferSink(capacity=1 << 20)
    original = cluster_mod.IssueQueue
    if force_linear:
        cluster_mod.IssueQueue = AlwaysScanQueue
    try:
        result = simulate(list(trace), config, tracer=EventTracer(sink))
    finally:
        cluster_mod.IssueQueue = original
    issues = [ev for ev in sink.events if ev[1] == EV_ISSUE]
    commits = [ev for ev in sink.events if ev[1] == EV_COMMIT]
    return issues, commits, result.to_dict()


@settings(max_examples=12, deadline=None)
@given(program=random_programs(),
       n_clusters=st.sampled_from([1, 2, 4]),
       predictor=st.sampled_from(["none", "stride", "context"]),
       steering=st.sampled_from(["baseline", "vpb", "dependence-only"]))
def test_batched_scan_is_bit_identical_to_linear_scan(
        program, n_clusters, predictor, steering):
    trace = execute(program, 1_500)
    config = make_config(n_clusters, predictor=predictor, steering=steering)
    batched = _issue_and_commit_stream(trace, config, force_linear=False)
    linear = _issue_and_commit_stream(trace, config, force_linear=True)
    # Same uops, same order, same cycles — for issue *and* commit —
    # and every aggregate metric identical.
    assert batched[0] == linear[0]
    assert batched[1] == linear[1]
    assert batched[2] == linear[2]


class _StubUop:
    """Duck-typed queue entry (the queue never inspects anything else)."""

    __slots__ = ("order", "min_issue_cycle", "wake_cycle", "iq")

    def __init__(self, order, min_issue_cycle, wake_cycle=0):
        self.order = order
        self.min_issue_cycle = min_issue_cycle
        self.wake_cycle = wake_cycle
        self.iq = None


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["dispatch", "reinsert", "issue"]),
              st.integers(0, 50)),
    min_size=1, max_size=40))
def test_next_try_bound_never_skips_a_wakeable_entry(ops):
    """``next_try`` stays <= every entry's earliest possible issue cycle."""
    queue = IssueQueue(capacity=64)
    order = 0
    for action, min_issue in ops:
        if action == "dispatch" and queue.has_space:
            queue.dispatch(_StubUop(order, min_issue))
            order += 1
        elif action == "reinsert":
            # Invalidated uops re-enter at age order with their wake
            # cleared; bias the age into the middle of the queue.
            queue.reinsert(_StubUop(order - min_issue, min_issue,
                                    wake_cycle=NEXT_TRY_IDLE))
            order += 1
        elif action == "issue" and len(queue) > 0:
            entries = list(queue)
            queue.remove_many(entries[:1 + min_issue % len(entries)])
        earliest = [max(u.min_issue_cycle, u.wake_cycle) for u in queue]
        if earliest:
            assert queue.next_try <= min(earliest)
        # Removals may leave the bound stale-low; that costs a wasted
        # scan, never a missed wake.
        assert queue.next_try <= NEXT_TRY_IDLE

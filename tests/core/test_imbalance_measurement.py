"""End-to-end checks of the NREADY imbalance measurement (§2.3.2)."""

from repro.core import make_config, simulate
from repro.isa import execute
from repro.workloads import synthetic, workload_trace


def test_concentrating_steering_measures_worse_imbalance():
    """Dependence-only steering famously ignores balance; NREADY must
    expose that relative to the balance-aware baseline."""
    trace = execute(synthetic.parallel_chains(8, 16), 8_000)
    concentrated = simulate(list(trace),
                            make_config(4, steering="dependence-only"))
    balanced = simulate(list(trace), make_config(4))
    assert concentrated.imbalance > balanced.imbalance


def test_round_robin_balances_counts():
    """Round-robin spreads dispatches evenly across clusters."""
    trace = workload_trace("cjpeg", 6000)
    result = simulate(list(trace), make_config(4, steering="round-robin"))
    counts = result.stats.dispatch_per_cluster
    assert max(counts) - min(counts) <= 1


def test_single_cluster_has_zero_imbalance():
    trace = workload_trace("cjpeg", 4000)
    result = simulate(list(trace), make_config(1))
    assert result.imbalance == 0.0


def test_dcount_threshold_bounds_dispatch_skew():
    """Rule 1 caps how far apart the per-cluster dispatch counts drift."""
    trace = workload_trace("gsmdec", 8000)
    result = simulate(list(trace), make_config(4))
    counts = result.stats.dispatch_per_cluster
    total = sum(counts)
    # DCOUNT threshold 32 = at most 8 instructions of drift at any
    # moment; by the end of a long run the shares must be close.
    assert max(counts) - min(counts) < 0.15 * total


def test_imbalance_nonnegative_everywhere():
    for name in ("cjpeg", "mesaosdemo", "pgpenc"):
        trace = workload_trace(name, 3000)
        for steering in ("baseline", "vpb", "round-robin"):
            predictor = "stride" if steering == "vpb" else "none"
            result = simulate(list(trace),
                              make_config(2, predictor=predictor,
                                          steering=steering))
            assert result.imbalance >= 0.0

"""Property-based tests: randomly generated programs always simulate
cleanly on every configuration.

The generator emits structurally valid µRISC programs (straight-line
bodies inside a counted loop, with loads/stores over a private buffer
and optional fp work), executes them functionally, and replays the trace
through the timing model.  Whatever the program, the simulator must
terminate, retire exactly the trace, and keep its accounting coherent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_config, simulate
from repro.isa import ProgramBuilder, execute

INT_BINOPS = ["add", "sub", "and", "or", "xor", "min", "max", "mul"]
SCRATCH = [f"r{i}" for i in range(8, 24)]


@st.composite
def random_programs(draw):
    body_ops = draw(st.lists(
        st.tuples(st.sampled_from(INT_BINOPS + ["lw", "sw", "addi", "fp"]),
                  st.integers(0, len(SCRATCH) - 1),
                  st.integers(0, len(SCRATCH) - 1),
                  st.integers(0, 15)),
        min_size=3, max_size=40))
    iters = draw(st.integers(min_value=2, max_value=40))
    b = ProgramBuilder()
    buf = b.data("buf", list(range(16)))
    b.emit("li", "r1", buf)
    b.emit("li", "r6", 0)
    b.emit("li", "r7", iters)
    for i, reg in enumerate(SCRATCH):
        b.emit("li", reg, i + 1)
    b.emit("li", "r24", 2)
    b.emit("cvtif", "f8", "r24")
    b.emit("cvtif", "f9", "r24")
    b.label("loop")
    for op, a, c, imm in body_ops:
        ra, rc = SCRATCH[a], SCRATCH[c]
        if op == "lw":
            b.emit("lw", ra, "r1", 4 * (imm % 16))
        elif op == "sw":
            b.emit("sw", ra, "r1", 4 * (imm % 16))
        elif op == "addi":
            b.emit("addi", ra, rc, imm - 8)
        elif op == "fp":
            b.emit("fadd", "f8", "f8", "f9")
        else:
            b.emit(op, ra, ra, rc)
    b.emit("addi", "r6", "r6", 1)
    b.emit("blt", "r6", "r7", "loop")
    b.emit("halt")
    return b.build()


@settings(max_examples=15, deadline=None)
@given(program=random_programs(),
       n_clusters=st.sampled_from([1, 2, 4]),
       predictor=st.sampled_from(["none", "stride", "perfect"]),
       steering=st.sampled_from(["baseline", "vpb", "modified",
                                 "round-robin"]))
def test_random_programs_always_drain(program, n_clusters, predictor,
                                      steering):
    trace = execute(program, 2_000)
    config = make_config(n_clusters, predictor=predictor, steering=steering)
    result = simulate(list(trace), config)
    stats = result.stats
    assert stats.committed_insts == len(trace)
    assert stats.cycles > 0
    assert stats.ipc <= config.int_issue_width * n_clusters + 0.01 + (
        config.fp_issue_width * n_clusters)
    assert stats.mismatch_forwards <= stats.communications
    if n_clusters == 1:
        assert stats.communications == 0
    if predictor == "none":
        assert stats.speculative_operands == 0
    if predictor == "perfect":
        assert stats.invalidations == 0


@settings(max_examples=10, deadline=None)
@given(program=random_programs())
def test_prediction_never_changes_commitment(program):
    """Value prediction is performance-only: same retirement, any config."""
    trace = execute(program, 2_000)
    baseline = simulate(list(trace), make_config(4))
    for predictor in ("stride", "perfect"):
        result = simulate(list(trace), make_config(4, predictor=predictor,
                                                   steering="vpb"))
        assert (result.stats.committed_insts
                == baseline.stats.committed_insts == len(trace))


@settings(max_examples=10, deadline=None)
@given(program=random_programs(),
       latency=st.sampled_from([1, 2, 4]),
       paths=st.sampled_from([1, 2, None]))
def test_interconnect_knobs_never_break_forward_progress(program, latency,
                                                         paths):
    trace = execute(program, 1_500)
    config = make_config(4, predictor="stride", steering="vpb",
                         comm_latency=latency,
                         comm_paths_per_cluster=paths)
    result = simulate(list(trace), config)
    assert result.stats.committed_insts == len(trace)

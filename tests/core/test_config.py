"""Unit tests for the Table 1 configuration presets."""

import pytest

from repro.core import CLUSTER_PRESETS, ProcessorConfig, make_config


class TestPresets:
    def test_table1_one_cluster(self):
        config = make_config(1)
        assert config.iq_size == 64
        assert config.pregs_per_cluster == 128
        assert (config.int_units, config.int_muldiv) == (8, 4)
        assert (config.fp_units, config.fp_muldiv) == (4, 2)
        assert (config.int_issue_width, config.fp_issue_width) == (8, 4)

    def test_table1_two_clusters(self):
        config = make_config(2)
        assert config.iq_size == 32
        assert config.pregs_per_cluster == 80
        assert (config.int_units, config.int_muldiv) == (4, 2)
        assert (config.int_issue_width, config.fp_issue_width) == (4, 2)

    def test_table1_four_clusters(self):
        config = make_config(4)
        assert config.iq_size == 16
        assert config.pregs_per_cluster == 56
        assert (config.int_units, config.int_muldiv) == (2, 1)
        assert (config.fp_units, config.fp_muldiv) == (1, 1)
        assert (config.int_issue_width, config.fp_issue_width) == (2, 1)

    def test_shared_parameters_constant_across_presets(self):
        """ROB, widths and totals stay constant as clustering scales."""
        for n in (1, 2, 4):
            config = make_config(n)
            assert config.rob_size == 128
            assert config.fetch_width == 8
            assert config.retire_width == 8
            assert config.int_units * n == 8
            assert config.int_issue_width * n == 8

    def test_unknown_preset_rejected(self):
        # Non-power-of-two counts have no Table 1 preset nor a derived
        # one (see TestDerivedPresets for the accepted extensions).
        with pytest.raises(ValueError, match="power of two"):
            make_config(3)

    def test_overrides_apply(self):
        config = make_config(4, comm_latency=4, vp_entries=1024)
        assert config.comm_latency == 4
        assert config.vp_entries == 1024


class TestValidation:
    def test_bad_predictor_name(self):
        with pytest.raises(ValueError, match="predictor"):
            make_config(4, predictor="magic")

    def test_bad_steering_name(self):
        with pytest.raises(ValueError, match="steering"):
            make_config(4, steering="magic")

    def test_bad_latency(self):
        with pytest.raises(ValueError, match="comm_latency"):
            make_config(4, comm_latency=0)

    def test_register_file_must_hold_initial_mapping(self):
        with pytest.raises(ValueError, match="initial mapping"):
            make_config(1, pregs_per_cluster=32)

    def test_n_clusters_positive(self):
        with pytest.raises(ValueError):
            ProcessorConfig(n_clusters=0).validate()


class TestMisc:
    def test_with_overrides_does_not_mutate(self):
        config = make_config(4)
        other = config.with_overrides(comm_latency=4)
        assert config.comm_latency == 1
        assert other.comm_latency == 4

    def test_describe_mentions_key_knobs(self):
        text = make_config(4, predictor="stride", steering="vpb").describe()
        assert "4c" in text and "vpb" in text and "stride" in text
        assert "no-predict" in make_config(2).describe()


class TestDerivedPresets:
    def test_matches_table1_exactly(self):
        from repro.core import CLUSTER_PRESETS, derive_preset
        for n, preset in CLUSTER_PRESETS.items():
            assert derive_preset(n) == preset

    def test_eight_cluster_preset(self):
        from repro.core import derive_preset
        iq, pregs, iu, imd, fu, fmd, iw, fw = derive_preset(8)
        assert iq == 8 and pregs == 44
        assert (iu, imd, fu, fmd) == (1, 1, 1, 1)
        assert (iw, fw) == (1, 1)

    def test_make_config_accepts_eight(self):
        config = make_config(8, predictor="stride", steering="vpb")
        assert config.n_clusters == 8
        config.validate()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            make_config(3)
        with pytest.raises(ValueError, match="power of two"):
            make_config(16)

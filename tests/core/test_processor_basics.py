"""Timing-model tests: latencies, widths, stalls, and copy costs.

These pin the core semantics with small hand-built programs whose cycle
behaviour can be reasoned about exactly or bounded tightly.
"""

import pytest

from repro.core import make_config, simulate
from repro.isa import ProgramBuilder, execute
from repro.workloads import synthetic


def run_program(builder_or_program, config, cap=20_000):
    program = (builder_or_program.build()
               if isinstance(builder_or_program, ProgramBuilder)
               else builder_or_program)
    return simulate(execute(program, cap), config)


def chain_loop_program(length, iters, op="add"):
    """A loop whose body is one serial chain of *length* ops.

    The chain's accumulator carries across iterations (the final ``andi``
    keeps values bounded but dependent), so steady-state cycles per
    iteration approximate ``length * latency(op)``.
    """
    b = ProgramBuilder()
    b.emit("li", "r1", 3)
    b.emit("li", "r6", 0)
    b.emit("li", "r7", iters)
    b.label("loop")
    for _ in range(length):
        b.emit(op, "r1", "r1", "r1")
    b.emit("andi", "r1", "r1", 255)
    b.emit("ori", "r1", "r1", 3)
    b.emit("addi", "r6", "r6", 1)
    b.emit("blt", "r6", "r7", "loop")
    b.emit("halt")
    return b


def cycles_per_iteration(length, op, iters=80):
    result = run_program(chain_loop_program(length, iters, op),
                         make_config(1), cap=100_000)
    return result.stats.cycles / iters


class TestDependenceLatencies:
    def test_back_to_back_adds_single_cycle(self):
        """Growing a 1-cycle chain by K ops adds ~K cycles/iteration."""
        short = cycles_per_iteration(10, "add")
        long = cycles_per_iteration(50, "add")
        assert 38 <= long - short <= 43

    def test_mul_chain_three_cycles_per_link(self):
        short = cycles_per_iteration(10, "mul")
        long = cycles_per_iteration(30, "mul")
        assert 58 <= long - short <= 64

    def test_independent_ops_reach_issue_width(self):
        result = simulate(execute(synthetic.parallel_chains(8, 16), 12_000),
                          make_config(1))
        assert result.ipc > 5.0

    def test_serial_chain_ipc_near_one(self):
        result = simulate(execute(synthetic.serial_chain(64), 8_000),
                          make_config(1))
        assert 0.85 < result.ipc < 1.3


class TestLoads:
    def test_load_use_latency_two_on_hit(self):
        """A pointer-chase link costs ~2 cycles (agen + D-cache hit).

        The chase runs inside a loop so caches are warm; comparing two
        chain lengths cancels the loop overhead.
        """
        def prog(links, iters=12):
            b = ProgramBuilder()
            cells = 16
            base = b.zeros("cells", cells)
            b.emit("li", "r1", base)
            b.emit("li", "r2", base + 4)
            b.emit("li", "r6", 0)
            b.emit("li", "r7", cells - 1)
            b.label("init")
            b.emit("sw", "r2", "r1", 0)
            b.emit("addi", "r1", "r1", 4)
            b.emit("addi", "r2", "r2", 4)
            b.emit("addi", "r6", "r6", 1)
            b.emit("blt", "r6", "r7", "init")
            b.emit("li", "r2", base)
            b.emit("sw", "r2", "r1", 0)   # close the ring
            b.emit("li", "r6", 0)
            b.emit("li", "r7", iters)
            b.emit("li", "r3", base)   # the pointer carries across iters
            b.label("outer")
            for _ in range(links):
                b.emit("lw", "r3", "r3", 0)
            b.emit("addi", "r6", "r6", 1)
            b.emit("blt", "r6", "r7", "outer")
            b.emit("halt")
            return b
        short = run_program(prog(16), make_config(1), cap=50_000)
        long = run_program(prog(64), make_config(1), cap=50_000)
        per_link = (long.stats.cycles - short.stats.cycles) / (12 * 48)
        assert 1.8 <= per_link <= 2.3

    def test_dcache_ports_cap_memory_throughput(self):
        """More than 3 parallel loads/cycle are port-limited."""
        b = ProgramBuilder()
        buf = b.data("buf", list(range(64)))
        b.emit("li", "r1", buf)
        b.emit("li", "r7", 0)
        b.label("loop")
        for i in range(6):
            b.emit("lw", f"r{8 + i}", "r1", 4 * i)
        b.emit("addi", "r7", "r7", 1)
        b.emit("li", "r6", 200)
        b.emit("blt", "r7", "r6", "loop")
        b.emit("halt")
        result = run_program(b, make_config(1))
        # 6 loads + 3 others per iteration; 3 ports => >= 2 cycles/iter
        # for memory alone; IPC must stay below the port-implied bound.
        assert result.ipc <= 5.0
        ports_config = make_config(1, dcache_ports=6)
        faster = run_program(b, ports_config)
        assert faster.ipc > result.ipc


class TestStoreLoadInteraction:
    def test_forwarding_roundtrip_bounded(self):
        result = simulate(execute(synthetic.store_load_pairs(64), 8_000),
                          make_config(1))
        assert result.ipc > 1.5

    def test_store_address_split_lets_later_loads_go(self):
        """A store whose data comes off a long chain must not block
        independent younger loads (address-based disambiguation)."""
        def prog(mul_chain):
            b = ProgramBuilder()
            buf = b.data("buf", list(range(16)))
            other = b.data("other", list(range(16)))
            b.emit("li", "r1", buf)
            b.emit("li", "r2", other)
            b.emit("li", "r7", 0)
            b.emit("li", "r6", 100)
            b.emit("li", "r3", 3)
            b.label("loop")
            for _ in range(mul_chain):          # slow data for the store
                b.emit("mul", "r3", "r3", "r3")
            b.emit("sw", "r3", "r1", 0)
            b.emit("lw", "r4", "r2", 0)         # independent address
            b.emit("add", "r5", "r4", "r4")
            b.emit("addi", "r7", "r7", 1)
            b.emit("blt", "r7", "r6", "loop")
            b.emit("halt")
            return b
        result = run_program(prog(4), make_config(1))
        # The loop is limited by the 4-mul chain (12 cycles), not by the
        # store: ~9 instructions / ~13 cycles.
        assert result.ipc > 0.55

    def test_same_address_load_waits_for_store_data(self):
        """A load must not forward from a same-address store whose data
        is still being computed; routing the loop-carried value through
        memory adds the store+forward latency to the chain."""
        def prog(through_memory):
            b = ProgramBuilder()
            buf = b.data("buf", [0])
            b.emit("li", "r1", buf)
            b.emit("li", "r7", 0)
            b.emit("li", "r6", 100)
            b.emit("li", "r4", 3)
            b.label("loop")
            b.emit("mul", "r3", "r4", "r4")
            if through_memory:
                b.emit("sw", "r3", "r1", 0)
                b.emit("lw", "r4", "r1", 0)   # forwarded store value
            else:
                b.emit("mov", "r4", "r3")
            b.emit("andi", "r4", "r4", 255)
            b.emit("ori", "r4", "r4", 2)
            b.emit("addi", "r7", "r7", 1)
            b.emit("blt", "r7", "r6", "loop")
            b.emit("halt")
            return b
        direct = run_program(prog(False), make_config(1)).stats.cycles
        via_mem = run_program(prog(True), make_config(1)).stats.cycles
        assert via_mem >= direct + 80   # ~1 extra cycle/iteration


class TestBranches:
    def test_mispredictions_cost_pipeline_refills(self):
        predictable = simulate(execute(synthetic.counted_loop(4), 8_000),
                               make_config(1))
        random_br = simulate(execute(synthetic.random_branches(512), 8_000),
                             make_config(1))
        assert predictable.ipc > 2 * random_br.ipc
        assert random_br.stats.branch_misprediction_rate > 0.08

    def test_branch_stats_populated(self):
        result = simulate(execute(synthetic.counted_loop(2), 4_000),
                          make_config(1))
        assert result.stats.cond_branches > 100
        assert result.stats.branch_misprediction_rate < 0.1


class TestClusteredBasics:
    def test_single_cluster_has_no_communications(self):
        result = simulate(execute(synthetic.serial_chain(16), 4_000),
                          make_config(1, predictor="stride"))
        assert result.stats.communications == 0
        assert result.stats.dispatched_copies == 0
        assert result.stats.dispatched_vcopies == 0

    def test_clustering_degrades_ipc(self):
        trace = execute(synthetic.parallel_chains(8, 16), 8_000)
        ipc1 = simulate(list(trace), make_config(1)).ipc
        ipc4 = simulate(list(trace), make_config(4)).ipc
        assert ipc4 < ipc1

    def test_copies_appear_only_with_clusters(self):
        trace = execute(synthetic.parallel_chains(8, 16), 8_000)
        result = simulate(list(trace), make_config(4))
        assert result.stats.dispatched_copies > 0
        assert result.comm_per_inst > 0

    def test_communication_latency_hurts(self):
        trace = execute(synthetic.parallel_chains(8, 16), 8_000)
        fast = simulate(list(trace), make_config(4, comm_latency=1)).ipc
        slow = simulate(list(trace), make_config(4, comm_latency=4)).ipc
        assert slow < fast

    def test_two_cycle_rename_costs_little(self):
        trace = execute(synthetic.counted_loop(4), 8_000)
        base = simulate(list(trace), make_config(4)).ipc
        deep = simulate(list(trace),
                        make_config(4, extra_rename_cycles=1)).ipc
        assert deep <= base
        assert deep > 0.85 * base


class TestFpSide:
    def test_fp_chain_uses_fp_latency(self):
        result = simulate(execute(synthetic.fp_chain(16), 6_000),
                          make_config(1))
        # fadd latency 2, serial chain: IPC ~ 1/2 plus loop overhead.
        assert result.ipc < 0.8

    def test_fp_ops_do_not_consume_int_width(self):
        b = ProgramBuilder()
        b.emit("li", "r1", 2)
        b.emit("cvtif", "f1", "r1")
        b.emit("li", "r7", 0)
        b.emit("li", "r6", 300)
        b.label("loop")
        for i in range(4):
            b.emit("addi", f"r{8 + i}", "r7", i)
        b.emit("fadd", f"f2", "f1", "f1")
        b.emit("fadd", f"f3", "f1", "f1")
        b.emit("addi", "r7", "r7", 1)
        b.emit("blt", "r7", "r6", "loop")
        b.emit("halt")
        result = run_program(b, make_config(1))
        assert result.ipc > 4.0

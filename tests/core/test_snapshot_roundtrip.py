"""Property-based snapshot round-trips: ``save -> restore -> resume``
must be bit-identical to never having snapshotted.

The property is checked across the machine axes that actually change
what a snapshot must capture — cluster count (interconnect + register
bank shape), value predictor (table state), steering scheme (steerer
history) — and across random cut points, because the bug class these
tests hunt is state that exists only mid-flight (ROB entries, issued
but uncommitted ops, in-transit bus messages) being dropped or doubled
on restore.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (make_config, read_snapshot_meta, restore_executor,
                        restore_processor, save_executor, save_processor,
                        simulate)
from repro.core.processor import Processor
from repro.core.snapshot import SNAPSHOT_SCHEMA, SNAPSHOT_VERSION, SnapshotError
from repro.isa.executor import FunctionalExecutor
from repro.workloads import build_workload, workload_trace

WORKLOAD = "cjpeg"
TOTAL = 4_000

configs = st.sampled_from([
    make_config(1, predictor="none", steering="baseline"),
    make_config(2, predictor="stride", steering="vpb"),
    make_config(2, predictor="context", steering="dependence-only"),
    make_config(4, predictor="hybrid", steering="modified"),
    make_config(4, predictor="perfect", steering="balance-only"),
    make_config(2, predictor="stride", steering="round-robin"),
])


def _uninterrupted(config):
    executor = FunctionalExecutor(build_workload(WORKLOAD), TOTAL)
    return simulate(executor.run(), config, max_instructions=TOTAL)


def _resumed(config, cut, tmp):
    executor = FunctionalExecutor(build_workload(WORKLOAD), TOTAL)
    processor = Processor(config, executor.run())
    processor.trace_executor = executor
    processor.run_until(max_insts=cut)
    path = str(tmp / "machine.snap")
    save_processor(path, processor)
    restored, _ = restore_processor(path)
    restored.run_until(max_insts=TOTAL)
    return restored.finalize()


@settings(max_examples=8, deadline=None)
@given(config=configs, cut=st.integers(min_value=100, max_value=TOTAL - 100))
def test_machine_roundtrip_is_bit_identical(config, cut, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("snap")
    baseline = _uninterrupted(config)
    resumed = _resumed(config, cut, tmp)
    assert resumed.stats.cycles == baseline.stats.cycles
    assert resumed.stats.committed_insts == baseline.stats.committed_insts
    assert resumed.stats.ipc == baseline.stats.ipc
    assert resumed.stats.speculative_operands == \
        baseline.stats.speculative_operands
    assert resumed.stats.mispredicted_operands == \
        baseline.stats.mispredicted_operands
    assert resumed.stats.branch_mispredictions == \
        baseline.stats.branch_mispredictions
    assert resumed.stats.communications == baseline.stats.communications


@settings(max_examples=6, deadline=None)
@given(cut=st.integers(min_value=500, max_value=TOTAL - 500),
       seed=st.integers(min_value=0, max_value=3))
def test_executor_roundtrip_preserves_architectural_state(
        cut, seed, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("snap")
    straight = FunctionalExecutor(build_workload(WORKLOAD, seed=seed), TOTAL)
    straight.skip(TOTAL)

    executor = FunctionalExecutor(build_workload(WORKLOAD, seed=seed), TOTAL)
    executor.skip(cut)
    path = str(tmp / "executor.ckpt")
    save_executor(path, executor)
    resumed = restore_executor(path)
    assert resumed.seq == cut
    resumed.skip(TOTAL - cut)

    assert resumed.seq == straight.seq
    assert resumed.pc == straight.pc
    assert resumed.int_regs == straight.int_regs
    assert resumed.fp_regs == straight.fp_regs


def test_trace_list_snapshot_needs_trace_back(tmp_path):
    config = make_config(2, predictor="stride", steering="vpb")
    trace = workload_trace(WORKLOAD, TOTAL)
    baseline = simulate(list(trace), config, max_instructions=TOTAL)

    processor = Processor(config, iter(list(trace)))
    processor.run_until(max_insts=1_500)
    path = str(tmp_path / "tracelist.snap")
    save_processor(path, processor)

    with pytest.raises(SnapshotError):
        restore_processor(path)

    restored, executor = restore_processor(path, trace=list(trace))
    assert executor is None
    restored.run_until(max_insts=TOTAL)
    resumed = restored.finalize()
    assert resumed.stats.cycles == baseline.stats.cycles
    assert resumed.stats.ipc == baseline.stats.ipc


def test_meta_header_records_position_and_schema(tmp_path):
    config = make_config(2, predictor="stride", steering="vpb")
    executor = FunctionalExecutor(build_workload(WORKLOAD), TOTAL)
    processor = Processor(config, executor.run())
    processor.trace_executor = executor
    processor.run_until(max_insts=1_000)
    path = str(tmp_path / "machine.snap")
    save_processor(path, processor, extra={"workload": WORKLOAD})

    meta = read_snapshot_meta(path)
    assert meta.schema == SNAPSHOT_SCHEMA
    assert meta.version == SNAPSHOT_VERSION
    assert meta.kind == "machine"
    assert meta.committed_insts == processor.stats.committed_insts
    assert meta.cycle == processor.cycle
    assert meta.extra["workload"] == WORKLOAD


def test_incompatible_version_is_refused(tmp_path):
    executor = FunctionalExecutor(build_workload(WORKLOAD), 2_000)
    executor.skip(1_000)
    path = tmp_path / "executor.ckpt"
    save_executor(str(path), executor)

    raw = path.read_bytes()
    header, rest = raw.split(b"\n", 1)
    bad = header.replace(b'"version":1', b'"version":99')
    assert bad != header
    (tmp_path / "bad.ckpt").write_bytes(bad + b"\n" + rest)

    with pytest.raises(SnapshotError):
        read_snapshot_meta(str(tmp_path / "bad.ckpt"))
    with pytest.raises(SnapshotError):
        restore_executor(str(tmp_path / "bad.ckpt"))


def test_corrupt_payload_is_detected(tmp_path):
    executor = FunctionalExecutor(build_workload(WORKLOAD), 2_000)
    executor.skip(1_000)
    path = tmp_path / "executor.ckpt"
    save_executor(str(path), executor)

    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    (tmp_path / "corrupt.ckpt").write_bytes(bytes(raw))

    with pytest.raises(SnapshotError):
        restore_executor(str(tmp_path / "corrupt.ckpt"))

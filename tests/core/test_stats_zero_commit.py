"""Every derived rate stays defined when a run commits nothing.

A sweep cell that is truncated (``max_cycles``) or that deadlocks
before its first commit must still produce a well-formed result row —
``ZeroDivisionError`` inside a worker process would poison the whole
parallel sweep.
"""

import json
import math

import pytest

from repro.core import make_config, simulate
from repro.core.stats import SimStats
from repro.workloads import workload_trace


def _finite(value):
    return isinstance(value, float) and math.isfinite(value)


class TestEmptyStats:
    """SimStats() with every counter at zero."""

    def test_ipc_is_zero(self):
        assert SimStats().ipc == 0.0

    def test_comm_per_inst_is_zero(self):
        assert SimStats().comm_per_inst == 0.0

    def test_copies_per_inst_is_zero(self):
        assert SimStats().copies_per_inst == 0.0

    def test_branch_misprediction_rate_is_zero(self):
        assert SimStats().branch_misprediction_rate == 0.0

    def test_value_misprediction_rate_is_zero(self):
        assert SimStats().value_misprediction_rate == 0.0

    def test_avg_iq_occupancy_defined(self):
        stats = SimStats(iq_occupancy_sum=[10, 20])
        assert stats.avg_iq_occupancy() == [0.0, 0.0]

    def test_issue_utilization_defined(self):
        stats = SimStats(issued_per_cluster=[5, 5])
        assert stats.issue_utilization(4) == [0.0, 0.0]
        # Degenerate width must not divide by zero either.
        stats.cycles = 100
        assert stats.issue_utilization(0) == [0.0, 0.0]

    def test_partial_counters_stay_finite(self):
        # Numerators without denominators: the pathological mix a
        # truncated run can leave behind.
        stats = SimStats(communications=7, dispatched_copies=3,
                         branch_mispredictions=2, mispredicted_operands=1)
        for value in (stats.ipc, stats.comm_per_inst,
                      stats.copies_per_inst,
                      stats.branch_misprediction_rate,
                      stats.value_misprediction_rate):
            assert _finite(value) and value == 0.0


class TestZeroCommitRun:
    """A real simulation truncated before its first commit."""

    @pytest.fixture(scope="class")
    def result(self):
        trace = workload_trace("rawcaudio", 200)
        config = make_config(4, predictor="stride", steering="vpb")
        return simulate(list(trace), config, max_cycles=2)

    def test_nothing_committed(self, result):
        assert result.stats.committed_insts == 0

    def test_properties_defined(self, result):
        assert result.ipc == 0.0
        assert result.comm_per_inst == 0.0
        assert _finite(result.imbalance)

    def test_to_dict_json_round_trips(self, result):
        exported = result.to_dict()
        assert exported["ipc"] == 0.0
        assert exported["comm_per_inst"] == 0.0
        # Every exported number must survive JSON — no inf/nan leaks.
        json.dumps(exported)

    def test_summary_and_repr_render(self, result):
        assert "IPC" in result.summary()
        assert "ipc=" in repr(result)

"""Tests of the value-speculation machinery (§2.2).

Covers local speculative dispatch with producer-side verification,
verification-copies for remote operands (match = no communication,
mismatch = forward + selective reissue), the oracle predictor, and the
statistics that Figure 5 relies on.
"""

from repro.core import make_config, simulate
from repro.isa import ProgramBuilder, execute
from repro.workloads import synthetic
from repro.workloads.datagen import noise_words


def strided_consumer_program(iters=200):
    """A loop whose loop-carried value is perfectly stride-predictable
    but produced by a long-latency chain: prime value-speculation bait.
    """
    b = ProgramBuilder()
    b.emit("li", "r1", 0)        # induction, stride 1
    b.emit("li", "r7", iters)
    b.emit("li", "r3", 7)
    b.label("loop")
    b.emit("mul", "r2", "r3", "r3")     # slow, irrelevant
    b.emit("mul", "r2", "r2", "r3")
    b.emit("addi", "r1", "r1", 1)       # stride-1 producer
    b.emit("add", "r4", "r1", "r1")     # consumer of predictable r1
    b.emit("blt", "r1", "r7", "loop")
    b.emit("halt")
    return b.build()


def unpredictable_program(iters=300):
    """Loop-carried values that no stride predictor can track."""
    b = ProgramBuilder()
    base = b.data("noise", noise_words(99, 256, bits=16))
    b.emit("li", "r1", base)
    b.emit("li", "r6", 0)
    b.emit("li", "r7", iters)
    b.emit("li", "r3", 1)
    b.label("loop")
    b.emit("lw", "r2", "r1", 0)
    b.emit("mul", "r3", "r3", "r2")     # chain on noisy data
    b.emit("andi", "r3", "r3", 4095)
    b.emit("ori", "r3", "r3", 1)
    b.emit("addi", "r1", "r1", 4)
    b.emit("addi", "r6", "r6", 1)
    b.emit("blt", "r6", "r7", "loop")
    b.emit("halt")
    return b.build()


class TestLocalSpeculation:
    def test_speculation_statistics_populated(self):
        trace = execute(strided_consumer_program(), 8_000)
        result = simulate(list(trace), make_config(1, predictor="stride"))
        assert result.stats.speculative_operands > 0
        assert result.vp_stats["lookups"] > 0
        assert result.vp_stats["confident_fraction"] > 0.3

    def test_no_speculation_without_predictor(self):
        trace = execute(strided_consumer_program(), 8_000)
        result = simulate(list(trace), make_config(1))
        assert result.stats.speculative_operands == 0
        assert result.stats.invalidations == 0
        assert result.vp_stats["lookups"] == 0

    def test_mispredicted_speculations_cause_reissue(self):
        trace = execute(unpredictable_program(), 8_000)
        result = simulate(list(trace), make_config(1, predictor="stride"))
        if result.stats.mispredicted_operands:
            assert result.stats.invalidations > 0
        # Every reissue shows up as an extra issue event.
        assert (result.stats.issued_uops
                >= result.stats.committed_insts)

    def test_correct_results_regardless_of_speculation(self):
        """Committed instruction count must equal the trace length."""
        trace = execute(unpredictable_program(), 8_000)
        for predictor in ("none", "stride", "perfect"):
            result = simulate(list(trace),
                              make_config(1, predictor=predictor))
            assert result.stats.committed_insts == len(trace)

    def test_speculation_speeds_up_predictable_chains(self):
        trace = execute(strided_consumer_program(), 8_000)
        plain = simulate(list(trace), make_config(1)).ipc
        spec = simulate(list(trace),
                        make_config(1, predictor="stride")).ipc
        assert spec >= plain * 0.98  # never much worse

    def test_oracle_never_invalidates(self):
        trace = execute(unpredictable_program(), 8_000)
        result = simulate(list(trace), make_config(1, predictor="perfect"))
        assert result.stats.invalidations == 0
        assert result.stats.mispredicted_operands == 0


class TestRemoteSpeculation:
    def test_vcopies_replace_copies_for_predictable_values(self):
        trace = execute(synthetic.counted_loop(6), 10_000)
        plain = simulate(list(trace), make_config(4))
        spec = simulate(list(trace), make_config(4, predictor="stride"))
        assert spec.stats.dispatched_vcopies > 0
        assert spec.comm_per_inst < plain.comm_per_inst

    def test_correct_vcopies_do_not_communicate(self):
        """Communications = copies + mismatch forwards only."""
        trace = execute(synthetic.counted_loop(6), 10_000)
        result = simulate(list(trace), make_config(4, predictor="stride"))
        stats = result.stats
        assert stats.communications < (stats.dispatched_copies
                                       + stats.dispatched_vcopies)
        assert stats.mismatch_forwards <= stats.communications

    def test_mismatch_forwards_counted_for_noisy_values(self):
        trace = execute(unpredictable_program(1000), 10_000)
        result = simulate(list(trace),
                          make_config(4, predictor="stride",
                                      steering="vpb"))
        # Mispredicted remote operands pay the wire after all.
        assert result.stats.committed_insts == len(trace)

    def test_oracle_leaves_only_fp_communications(self):
        trace = execute(synthetic.counted_loop(6), 10_000)
        result = simulate(list(trace), make_config(4, predictor="perfect",
                                                   steering="vpb"))
        assert result.stats.communications == 0  # int-only workload

    def test_fp_operands_never_predicted(self):
        from repro.isa.registers import ZERO_REG, is_fp_reg
        trace = execute(synthetic.fp_chain(8), 8_000)
        result = simulate(list(trace), make_config(4, predictor="perfect",
                                                   steering="vpb"))
        # Exactly the integer, non-zero-register operands are looked up;
        # fp operands never reach the predictor.
        int_operands = sum(
            sum(1 for s in d.srcs if s != ZERO_REG and not is_fp_reg(s))
            for d in trace)
        assert result.vp_stats["lookups"] == int_operands


class TestVerificationGating:
    def test_commit_count_exact_under_heavy_speculation(self):
        trace = execute(unpredictable_program(1500), 12_000)
        for n_clusters in (1, 2, 4):
            result = simulate(list(trace),
                              make_config(n_clusters, predictor="stride",
                                          steering="vpb"))
            assert result.stats.committed_insts == len(trace)

    def test_value_misprediction_rate_sane(self):
        trace = execute(unpredictable_program(1500), 12_000)
        result = simulate(list(trace), make_config(1, predictor="stride"))
        assert 0.0 <= result.stats.value_misprediction_rate <= 1.0

"""Tests for the public simulate()/run_trace() API and SimResult."""

import pytest

from repro import ProcessorConfig, make_config, run_trace, simulate
from repro.isa import ProgramBuilder, execute
from repro.workloads import build_workload, synthetic


def tiny_program():
    b = ProgramBuilder()
    b.emit("li", "r1", 0)
    b.emit("li", "r2", 50)
    b.label("loop")
    b.emit("addi", "r1", "r1", 1)
    b.emit("blt", "r1", "r2", "loop")
    b.emit("halt")
    return b.build()


class TestSimulateInputs:
    def test_accepts_program(self):
        result = simulate(tiny_program(), make_config(1))
        assert result.stats.committed_insts > 50

    def test_accepts_trace_list(self):
        trace = execute(tiny_program())
        result = simulate(trace, make_config(1))
        assert result.stats.committed_insts == len(trace)

    def test_accepts_iterator(self):
        trace = execute(tiny_program())
        result = simulate(iter(trace), make_config(1))
        assert result.stats.committed_insts == len(trace)

    def test_run_trace_alias(self):
        trace = execute(tiny_program())
        assert (run_trace(trace, make_config(1)).stats.committed_insts
                == len(trace))

    def test_max_instructions_caps_program_execution(self):
        program = synthetic.serial_chain(16)
        result = simulate(program, make_config(1), max_instructions=500)
        assert result.stats.committed_insts == 500

    def test_max_cycles_stops_simulation(self):
        result = simulate(build_workload("cjpeg"), make_config(1),
                          max_instructions=5000, max_cycles=100)
        assert result.stats.cycles == 100

    def test_invalid_config_rejected_before_running(self):
        config = ProcessorConfig(n_clusters=4, predictor="nope")
        with pytest.raises(ValueError):
            simulate(tiny_program(), config)


class TestSimResultSurface:
    def test_shortcut_properties(self):
        result = simulate(tiny_program(), make_config(1))
        assert result.ipc == result.stats.ipc
        assert result.comm_per_inst == result.stats.comm_per_inst
        assert result.imbalance == result.stats.avg_imbalance

    def test_summary_mentions_key_metrics(self):
        result = simulate(tiny_program(),
                          make_config(4, predictor="stride"))
        text = result.summary()
        assert "IPC" in text
        assert "communications/inst" in text
        assert "VP hit ratio" in text

    def test_repr_compact(self):
        result = simulate(tiny_program(), make_config(1))
        assert "ipc=" in repr(result)

    def test_component_stats_bundles(self):
        result = simulate(tiny_program(), make_config(1,
                                                      predictor="stride"))
        assert set(result.cache_stats) == {"l1i", "l1d", "l2"}
        assert "accuracy" in result.bp_stats
        assert "hit_ratio" in result.vp_stats

    def test_stats_rate_helpers_empty_safe(self):
        from repro.core import SimStats
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.comm_per_inst == 0.0
        assert stats.copies_per_inst == 0.0
        assert stats.branch_misprediction_rate == 0.0
        assert stats.value_misprediction_rate == 0.0


class TestToDict:
    def test_to_dict_round_trips_through_json(self):
        import json
        result = simulate(tiny_program(),
                          make_config(4, predictor="stride",
                                      steering="vpb"))
        data = result.to_dict()
        encoded = json.dumps(data)
        decoded = json.loads(encoded)
        assert decoded["committed_insts"] == result.stats.committed_insts
        assert decoded["ipc"] == pytest.approx(result.ipc)
        assert "value_predictor" in decoded
        assert decoded["dispatch_per_cluster"] and isinstance(
            decoded["dispatch_per_cluster"], list)

    def test_to_dict_contains_every_headline_metric(self):
        result = simulate(tiny_program(), make_config(2))
        data = result.to_dict()
        for key in ("ipc", "comm_per_inst", "imbalance", "cycles",
                    "invalidations", "branch_misprediction_rate"):
            assert key in data


class TestDescribeState:
    def test_snapshot_mid_run_and_after(self):
        from repro.core.processor import Processor
        from repro.workloads import workload_trace
        trace = workload_trace("rawcaudio", 2000)
        processor = Processor(make_config(4), iter(list(trace)))
        processor.run(max_cycles=30)
        text = processor.describe_state()
        assert "cycle 30" in text
        assert "cluster 3" in text
        assert "ROB" in text
        processor.run()
        done = processor.describe_state()
        assert "fetch done" in done

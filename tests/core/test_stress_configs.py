"""Stress tests: pathologically small structures must still drain.

The core's stall logic (ROB, issue queues, free lists, fetch buffer,
interconnect paths) is exercised hardest when every structure is at its
minimum — any accounting slip shows up as a deadlock (caught by the
watchdog) or a lost instruction (caught by the commit count).
"""

import pytest

from repro.core import make_config, simulate
from repro.workloads import synthetic, workload_trace
from repro.isa import execute

TRACE_LEN = 1500


@pytest.fixture(scope="module")
def trace():
    return workload_trace("cjpeg", TRACE_LEN)


class TestTinyStructures:
    @pytest.mark.parametrize("overrides", [
        dict(rob_size=8),
        dict(rob_size=4),
        dict(iq_size=2),
        dict(fetch_buffer=1),
        dict(decode_width=1),
        dict(retire_width=1),
        dict(int_issue_width=1, fp_issue_width=1),
        dict(dcache_ports=1),
        dict(rob_size=8, iq_size=2, fetch_buffer=2, decode_width=1),
    ])
    def test_minimum_structures_drain(self, trace, overrides):
        config = make_config(4, predictor="stride", steering="vpb",
                             **overrides)
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == TRACE_LEN
        assert result.ipc > 0

    def test_rob_too_small_for_copies_never_wedges(self, trace):
        """ROB of 4 must fit 1 instruction + its copies; a 2-source
        instruction needing 2 copies requires 3 slots — still < 4."""
        config = make_config(4, rob_size=4)
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == TRACE_LEN

    def test_tiny_everything_is_just_slow(self, trace):
        big = simulate(list(trace), make_config(4)).stats.cycles
        small = simulate(list(trace),
                         make_config(4, rob_size=8, iq_size=2,
                                     fetch_buffer=2)).stats.cycles
        assert small > big


class TestExtremeInterconnect:
    def test_very_long_latency_drains(self, trace):
        config = make_config(4, comm_latency=32)
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == TRACE_LEN

    def test_long_latency_with_speculation_drains(self, trace):
        config = make_config(4, comm_latency=16, predictor="stride",
                             steering="vpb")
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == TRACE_LEN

    def test_one_path_with_long_latency(self, trace):
        config = make_config(4, comm_latency=8, comm_paths_per_cluster=1)
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == TRACE_LEN

    def test_latency_monotonically_costs_cycles(self, trace):
        cycles = [simulate(list(trace),
                           make_config(4, comm_latency=lat)).stats.cycles
                  for lat in (1, 8, 32)]
        assert cycles[0] < cycles[1] < cycles[2]


class TestExtremeLatencies:
    def test_slow_divides_stall_but_drain(self):
        from repro.isa.opcodes import OpClass
        trace = workload_trace("g721enc", 1200)
        config = make_config(4, latencies={OpClass.IDIV: 64})
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == 1200

    def test_single_cycle_everything(self):
        from repro.isa.opcodes import OpClass
        trace = workload_trace("cjpeg", 1500)
        fast = make_config(4, latencies={klass: 1 for klass in OpClass})
        result = simulate(list(trace), fast)
        baseline = simulate(list(trace), make_config(4))
        assert result.stats.cycles <= baseline.stats.cycles


class TestSpeculationUnderPressure:
    def test_tiny_rob_with_heavy_misprediction(self):
        trace = execute(synthetic.random_branches(512), 4000)
        config = make_config(4, rob_size=8, predictor="stride",
                             steering="vpb")
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == len(trace)

    def test_naive_predictor_update_under_pressure(self):
        trace = workload_trace("gsmdec", 1500)
        config = make_config(4, predictor="stride", steering="vpb",
                             vp_two_delta=False, iq_size=2, rob_size=16)
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == 1500

    def test_modified_scheme_with_tight_interconnect(self):
        trace = workload_trace("mpeg2enc", 1500)
        config = make_config(4, predictor="stride", steering="modified",
                             comm_paths_per_cluster=1, comm_latency=4)
        result = simulate(list(trace), config)
        assert result.stats.committed_insts == 1500

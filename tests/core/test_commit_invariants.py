"""End-of-run invariants: nothing leaks, everything retires, stats add up."""

import pytest

from repro.core import make_config
from repro.core.processor import Processor
from repro.isa import execute
from repro.isa.registers import NUM_LOGICAL_REGS
from repro.workloads import synthetic, workload_trace


def run_processor(trace, config):
    processor = Processor(config, iter(list(trace)))
    result = processor.run()
    return processor, result


CONFIG_MATRIX = [
    dict(n_clusters=1),
    dict(n_clusters=4),
    dict(n_clusters=4, predictor="stride", steering="vpb"),
    dict(n_clusters=2, predictor="perfect", steering="vpb"),
    dict(n_clusters=4, predictor="stride", steering="modified",
         comm_paths_per_cluster=1),
]


@pytest.fixture(scope="module")
def mixed_trace():
    return workload_trace("cjpeg", 4000)


@pytest.mark.parametrize("overrides", CONFIG_MATRIX)
class TestDrainInvariants:
    def test_everything_retires_and_structures_drain(self, overrides,
                                                     mixed_trace):
        kwargs = dict(overrides)
        n_clusters = kwargs.pop("n_clusters")
        processor, result = run_processor(mixed_trace,
                                          make_config(n_clusters, **kwargs))
        stats = result.stats
        assert stats.committed_insts == len(mixed_trace)
        assert not processor.rob
        for cluster in processor.clusters:
            assert cluster.occupancy == 0
        assert not processor._pending_store_addrs
        assert not any(processor._inflight_stores.values())

    def test_no_physical_register_leak(self, overrides, mixed_trace):
        """After draining, every allocated register backs a valid map
        field (architectural mappings plus still-live replicas, which
        are only reclaimed by the logical register's next writer)."""
        kwargs = dict(overrides)
        n_clusters = kwargs.pop("n_clusters")
        processor, _ = run_processor(mixed_trace,
                                     make_config(n_clusters, **kwargs))
        counts = processor.renamer.allocated_counts()
        total_mapped = sum(
            len(processor.renamer.mapped_clusters(logical))
            for logical in range(NUM_LOGICAL_REGS))
        assert sum(counts.values()) == total_mapped
        for logical in range(NUM_LOGICAL_REGS):
            assert len(processor.renamer.mapped_clusters(logical)) >= 1

    def test_stats_arithmetic(self, overrides, mixed_trace):
        kwargs = dict(overrides)
        n_clusters = kwargs.pop("n_clusters")
        _, result = run_processor(mixed_trace,
                                  make_config(n_clusters, **kwargs))
        stats = result.stats
        assert stats.cycles > 0
        assert stats.issued_uops >= (stats.committed_insts
                                     + stats.committed_copies
                                     + stats.committed_vcopies)
        assert stats.dispatched_insts == stats.committed_insts
        assert stats.committed_copies == stats.dispatched_copies
        assert stats.committed_vcopies == stats.dispatched_vcopies
        assert stats.mismatch_forwards <= stats.communications
        assert sum(stats.dispatch_per_cluster) == stats.dispatched_insts
        assert stats.mispredicted_operands <= stats.speculative_operands
        if n_clusters == 1:
            assert stats.communications == 0


class TestDeterminism:
    def test_same_trace_same_config_same_stats(self):
        trace = workload_trace("rawcaudio", 3000)
        config = make_config(4, predictor="stride", steering="vpb")
        a = run_processor(trace, config)[1]
        b = run_processor(trace, config)[1]
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.communications == b.stats.communications
        assert a.stats.invalidations == b.stats.invalidations
        assert a.imbalance == b.imbalance

    def test_fresh_config_objects_equivalent(self):
        trace = workload_trace("rawcaudio", 3000)
        a = run_processor(trace, make_config(2, predictor="stride"))[1]
        b = run_processor(trace, make_config(2, predictor="stride"))[1]
        assert a.stats.cycles == b.stats.cycles


class TestWatchdog:
    def test_watchdog_raises_not_hangs(self):
        """A pathologically tiny deadlock window trips the watchdog
        rather than looping forever."""
        from repro.errors import SimulationError
        trace = execute(synthetic.serial_chain(64), 3_000)
        config = make_config(1, deadlock_cycles=1)
        with pytest.raises(SimulationError):
            run_processor(trace, config)

    def test_max_cycles_cuts_run_short(self):
        trace = workload_trace("cjpeg", 4000)
        processor = Processor(make_config(1), iter(list(trace)))
        result = processor.run(max_cycles=50)
        assert result.stats.cycles == 50
        assert result.stats.committed_insts < len(trace)


class TestUtilizationStats:
    def test_per_cluster_issue_counts_sum(self, mixed_trace):
        _, result = run_processor(mixed_trace,
                                  make_config(4, predictor="stride",
                                              steering="vpb"))
        stats = result.stats
        assert sum(stats.issued_per_cluster) == stats.issued_uops
        assert all(count >= 0 for count in stats.issued_per_cluster)

    def test_occupancy_and_utilization_bounded(self, mixed_trace):
        config = make_config(4)
        _, result = run_processor(mixed_trace, config)
        occupancy = result.stats.avg_iq_occupancy()
        assert len(occupancy) == 4
        assert all(0 <= o <= 2 * config.iq_size + 2 for o in occupancy)
        width = config.int_issue_width + config.fp_issue_width
        utilization = result.stats.issue_utilization(width)
        assert all(0 <= u <= 1.0 for u in utilization)

    def test_exports_in_to_dict(self, mixed_trace):
        _, result = run_processor(mixed_trace, make_config(2))
        data = result.to_dict()
        assert len(data["issued_per_cluster"]) == 2
        assert len(data["avg_iq_occupancy"]) == 2

"""Documentation tests: the tutorial's code blocks actually run.

Extracts every ```python block from docs/TUTORIAL.md and executes them
sequentially in one namespace (the tutorial builds on itself), with a
tiny patch to keep file output inside a temp directory.
"""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"
README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_tutorial_blocks_execute(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)   # step 7 writes figure2.csv
    text = (DOCS / "TUTORIAL.md").read_text()
    blocks = python_blocks(text)
    assert len(blocks) >= 6
    namespace = {}
    for block in blocks:
        exec(compile(block, "<tutorial>", "exec"), namespace)
    assert (tmp_path / "figure2.csv").exists()
    out = capsys.readouterr().out
    assert "IPC" in out


def test_readme_quickstart_executes(capsys):
    text = README.read_text()
    blocks = python_blocks(text)
    quickstart = next(b for b in blocks if "simulate(" in b)
    exec(compile(quickstart, "<readme>", "exec"), {})
    assert "IPC" in capsys.readouterr().out


def test_docs_reference_real_files():
    for doc in (README, DOCS / "ARCHITECTURE.md", DOCS / "TUTORIAL.md"):
        text = doc.read_text()
        for match in re.findall(r"`(benchmarks/\w+\.py)`", text):
            assert (README.parent / match).exists(), match
        for match in re.findall(r"`(examples/\w+\.py)`", text):
            assert (README.parent / match).exists(), match


def test_every_module_imports_cleanly():
    import importlib
    import pkgutil

    import repro
    count = 0
    for module in pkgutil.walk_packages(repro.__path__, "repro."):
        if module.name.endswith("__main__"):
            continue   # running the CLI parser is tested in test_cli
        importlib.import_module(module.name)
        count += 1
    assert count >= 60

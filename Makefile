# Developer entry points. The repo has no build step; these wrap the
# test suite, the figure benchmarks, and the robustness harness.

PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test benchmarks bench-wallclock campaign check clean-results

test:
	$(PYTHON) -m pytest tests/ -x -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Serial-vs-parallel sweep wall-clock; appends to BENCH_sweep.json.
bench-wallclock:
	$(PYTHON) benchmarks/bench_wallclock.py

# The robustness campaign: seeds x fault kinds under the golden model,
# report in results/robustness_campaign.txt, exit 1 on any regression.
campaign:
	$(PYTHON) -m repro campaign

# The full gate: unit suite plus a small campaign smoke.
check: test
	$(PYTHON) -m repro campaign --workloads rawcaudio --length 2000 --seeds 2

clean-results:
	rm -rf results/

# Developer entry points. The repo has no build step; these wrap the
# test suite, the figure benchmarks, and the robustness harness.

PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

# Opt-in content-addressed sweep result cache (docs/PERFORMANCE.md):
# `make benchmarks CACHE_DIR=.repro_cache` memoizes every cell on disk,
# so re-running figures after a doc or analysis change is nearly free.
CACHE_DIR ?=
ifneq ($(CACHE_DIR),)
export REPRO_CACHE := $(CACHE_DIR)
endif

.PHONY: test benchmarks bench-wallclock bench-smoke cache-stats \
	cache-clear campaign check clean-results obs-check report \
	sample-check telemetry-check trace-demo

test:
	$(PYTHON) -m pytest tests/ -x -q

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Serial-vs-parallel sweep wall-clock; appends to BENCH_sweep.json.
bench-wallclock:
	$(PYTHON) benchmarks/bench_wallclock.py

# Sub-minute sweep gate (docs/PERFORMANCE.md): chunked warm-pool
# parallel must beat serial on multi-core hosts, a cold -> warm cache
# cycle must rerun with zero simulations — all metric-identical — and
# serial insts/s must stay within 20% of this host's best recorded
# smoke_guard entry in BENCH_sweep.json.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py

# Result-cache maintenance (honours CACHE_DIR / REPRO_CACHE).
cache-stats:
	$(PYTHON) -m repro cache stats

cache-clear:
	$(PYTHON) -m repro cache clear

# Observability gate (docs/OBSERVABILITY.md): traced runs must stay
# bit-identical to untraced ones, trace files must validate against
# their schemas, ring-buffer tracing must cost < 10% wall-clock, and a
# run with observability off must not allocate in any repro.obs module
# (tracemalloc audit).
obs-check:
	$(PYTHON) benchmarks/obs_check.py

# Sweep-telemetry gate (docs/OBSERVABILITY.md): monitoring a 30-cell
# sweep must cost < 2% wall-clock and stay bit-identical to the
# unmonitored run, the telemetry JSONL and run receipts must validate
# against their schemas, and receipt cache counters must match the
# simulate calls that actually happened (cold and warm).
telemetry-check:
	$(PYTHON) benchmarks/telemetry_check.py

# Sampled-simulation gate (docs/SAMPLING.md): a million-instruction
# sampled run must deliver >= 20x the detailed model's effective
# insts/s with <= 2% IPC error, both snapshot kinds must round-trip
# bit-identically (save -> restore -> resume == uninterrupted), and a
# sampled sweep cell's run receipt must validate with its sampling
# block intact.
sample-check:
	$(PYTHON) benchmarks/sample_check.py

# Performance dashboard: BENCH_sweep.json history rendered as markdown
# with throughput-regression flags (docs/PERFORMANCE.md).
report:
	$(PYTHON) -m repro report

# A taste of the instrumentation: ASCII pipeline diagram of a window
# of the dynamic stream plus a Perfetto-loadable trace in results/.
trace-demo:
	mkdir -p results
	$(PYTHON) -m repro trace cjpeg --length 4000 --predictor stride \
		--steering vpb --first-seq 200 --count 24 \
		--out results/trace_demo.json

# The robustness campaign: seeds x fault kinds under the golden model,
# report in results/robustness_campaign.txt, exit 1 on any regression.
campaign:
	$(PYTHON) -m repro campaign

# The full gate: unit suite plus a small campaign smoke.
check: test
	$(PYTHON) -m repro campaign --workloads rawcaudio --length 2000 --seeds 2

clean-results:
	rm -rf results/
